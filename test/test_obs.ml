(* Observability tests: the span tracer records well-nested per-core
   phase spans over simulated time, the metrics registry's per-epoch
   snapshots reconcile exactly with the engine's epoch reports, the
   Chrome-trace export round-trips through the JSON codec, and
   crash/recovery produces the four recovery-phase spans. *)

open Nvcaracal
module Tracer = Nv_obs.Tracer
module Metrics = Nv_obs.Metrics
module Trace_export = Nv_obs.Trace_export
module Jsonx = Nv_obs.Jsonx
module Histogram = Nv_util.Histogram

let bytes_of_string = Bytes.of_string

let config ?(crash_safe = false) () =
  Config.make ~cores:4 ~crash_safe ~cache_k:3 ~rows_per_core:2048 ~values_per_core:2048
    ~freelist_capacity:2048 ~log_capacity:(1 lsl 20) ()

let tables = [ Table.make ~id:0 ~name:"t" () ]

let mk_db ?crash_safe () = Db.create ~config:(config ?crash_safe ()) ~tables ()

let load_n db n =
  Db.bulk_load db
    (Seq.init n (fun i -> (0, Int64.of_int i, bytes_of_string (Printf.sprintf "v0-%d" i))))

(* A logged read-modify-write: the input encodes (key, payload) so
   recovery can rebuild the transaction from the log. *)
let enc key data =
  let b = Bytes.create (8 + Bytes.length data) in
  Bytes.set_int64_le b 0 key;
  Bytes.blit data 0 b 8 (Bytes.length data);
  b

let logged_update key data =
  Txn.make ~input:(enc key data) ~write_set:[ Txn.Update { table = 0; key } ] (fun ctx ->
      ctx.Txn.Ctx.write ~table:0 ~key data)

let rebuild input =
  let key = Bytes.get_int64_le input 0 in
  let data = Bytes.sub input 8 (Bytes.length input - 8) in
  logged_update key data

let batch ~epoch n =
  Array.init n (fun i ->
      logged_update
        (Int64.of_int (i mod 24))
        (bytes_of_string (Printf.sprintf "e%d-i%d" epoch i)))

let phase_names =
  [ "input-log"; "insert"; "major-gc"; "evict"; "append"; "execute"; "fence"; "epoch-persist" ]

let complete_spans tr =
  List.filter (fun (e : Tracer.event) -> e.Tracer.ph = Tracer.Complete) (Tracer.events tr)

let by_track spans =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (e : Tracer.event) ->
      let key = (e.Tracer.pid, e.Tracer.track) in
      Hashtbl.replace tbl key (e :: (try Hashtbl.find tbl key with Not_found -> [])))
    spans;
  Hashtbl.fold (fun k es acc -> (k, List.rev es) :: acc) tbl []

(* ------------------------------------------------------------------ *)

let test_span_nesting () =
  let db = mk_db () in
  let tr = Tracer.create ~txn_sample:1 () in
  Db.set_observability ~tracer:tr ~name:"nesting-test" db;
  load_n db 32;
  for e = 1 to 3 do
    ignore (Db.run_epoch db (batch ~epoch:e 40))
  done;
  let spans = complete_spans tr in
  Alcotest.(check bool) "spans recorded" true (spans <> []);
  (* Every Algorithm-1 phase appears, on every core's track. *)
  List.iter
    (fun name ->
      let on_tracks =
        List.filter (fun (e : Tracer.event) -> e.Tracer.name = name && e.Tracer.cat = "epoch")
          spans
        |> List.map (fun (e : Tracer.event) -> e.Tracer.track)
        |> List.sort_uniq compare
      in
      Alcotest.(check (list int)) (name ^ " on all cores") [ 0; 1; 2; 3 ] on_tracks)
    phase_names;
  let eps = 1e-6 in
  List.iter
    (fun ((pid, track), es) ->
      let label = Printf.sprintf "pid %d track %d" pid track in
      (* Durations are non-negative and end-times never go backwards in
         emission order (simulated time is monotone per core). *)
      let last_end = ref neg_infinity in
      List.iter
        (fun (e : Tracer.event) ->
          if e.Tracer.dur < 0.0 then Alcotest.failf "%s: negative duration %s" label e.Tracer.name;
          let e_end = e.Tracer.ts +. e.Tracer.dur in
          if e_end < !last_end -. eps then
            Alcotest.failf "%s: end-time regressed at %s" label e.Tracer.name;
          last_end := e_end)
        es;
      (* Spans on one track are strictly nested: any two either do not
         overlap or one contains the other. *)
      let arr = Array.of_list es in
      Array.iteri
        (fun i a ->
          Array.iteri
            (fun j b ->
              if i < j then begin
                (* Order as (outer, inner): earlier start first; on a
                   shared start the longer span is the outer one. *)
                let a, b =
                  if
                    a.Tracer.ts < b.Tracer.ts -. eps
                    || (Float.abs (a.Tracer.ts -. b.Tracer.ts) <= eps
                       && a.Tracer.dur >= b.Tracer.dur)
                  then (a, b)
                  else (b, a)
                in
                let a_end = a.Tracer.ts +. a.Tracer.dur
                and b_end = b.Tracer.ts +. b.Tracer.dur in
                let disjoint = b.Tracer.ts >= a_end -. eps in
                let nested = b_end <= a_end +. eps in
                if not (disjoint || nested) then
                  Alcotest.failf "%s: %s and %s partially overlap" label a.Tracer.name
                    b.Tracer.name
              end)
            arr)
        arr)
    (by_track spans)

let test_metrics_reconcile () =
  let db = mk_db () in
  let m = Metrics.create () in
  Db.set_observability ~metrics:m ~name:"metrics-test" db;
  load_n db 32;
  let reports = List.init 3 (fun e -> Db.run_epoch db (batch ~epoch:(e + 1) 50)) in
  let records = List.map (fun j -> j) (Metrics.records m) in
  Alcotest.(check int) "one record per epoch" (List.length reports) (List.length records);
  let field r name =
    match Jsonx.member name r with
    | Some v -> v
    | None -> Alcotest.failf "record missing field %S" name
  in
  let geti r name = Jsonx.to_int (field r name) in
  List.iter2
    (fun (s : Report.epoch_stats) r ->
      let check name expected = Alcotest.(check int) name expected (geti r name) in
      check "epoch" s.Report.epoch;
      check "txns" s.Report.txns;
      check "committed" (s.Report.txns - s.Report.aborted);
      check "aborted" s.Report.aborted;
      check "version_writes" s.Report.version_writes;
      check "persistent_writes" s.Report.persistent_writes;
      check "transient_only_writes" s.Report.transient_only_writes;
      check "minor_gc" s.Report.minor_gc;
      check "major_gc" s.Report.major_gc;
      check "evicted" s.Report.evicted;
      check "cache_hits" s.Report.cache_hits;
      check "cache_misses" s.Report.cache_misses;
      check "log_bytes" s.Report.log_bytes;
      Alcotest.(check (float 1e-6)) "duration_ns" s.Report.duration_ns
        (Jsonx.to_float (field r "duration_ns")))
    reports records;
  (* The JSONL rendering parses back line by line. *)
  let lines =
    String.split_on_char '\n' (Metrics.to_jsonl m) |> List.filter (fun l -> l <> "")
  in
  Alcotest.(check int) "jsonl lines" (List.length records) (List.length lines);
  List.iter (fun l -> ignore (Jsonx.of_string l)) lines

let test_trace_export_roundtrip () =
  let db = mk_db () in
  let tr = Tracer.create () in
  Db.set_observability ~tracer:tr ~name:"export-test" db;
  load_n db 32;
  for e = 1 to 2 do
    ignore (Db.run_epoch db (batch ~epoch:e 30))
  done;
  let s = Trace_export.to_string tr in
  let j = Jsonx.of_string s in
  let events =
    match Jsonx.member "traceEvents" j with
    | Some v -> Jsonx.to_list v
    | None -> Alcotest.fail "no traceEvents key"
  in
  Alcotest.(check bool) "has events" true (List.length events > 0);
  let names =
    List.filter_map
      (fun e -> match Jsonx.member "name" e with Some (Jsonx.String n) -> Some n | _ -> None)
      events
  in
  List.iter
    (fun p -> Alcotest.(check bool) ("export contains " ^ p) true (List.mem p names))
    phase_names;
  List.iter
    (fun meta -> Alcotest.(check bool) ("export contains " ^ meta) true (List.mem meta names))
    [ "process_name"; "thread_name" ];
  (* The codec round-trips its own output exactly. *)
  Alcotest.(check string) "parse/print round-trip" s (Jsonx.to_string j);
  (* Exported events = recorded events plus "M" metadata rows. *)
  let data_events =
    List.filter (fun n -> n <> "process_name" && n <> "thread_name") names
  in
  Alcotest.(check int) "event count" (Tracer.event_count tr) (List.length data_events)

let test_recovery_spans () =
  let db = mk_db ~crash_safe:true () in
  load_n db 32;
  ignore (Db.run_epoch db (batch ~epoch:1 40));
  let exception Crash_now in
  Db.set_phase_hook db (fun p -> if p = Db.Exec_txn 5 then raise Crash_now);
  (try ignore (Db.run_epoch db (batch ~epoch:2 40)) with Crash_now -> ());
  let pmem = Db.crash db ~rng:(Nv_util.Rng.create 11) in
  let tr = Tracer.create () in
  let m = Metrics.create () in
  let _db2, report =
    Db.recover ~config:(config ~crash_safe:true ()) ~tables ~pmem ~rebuild ~tracer:tr
      ~metrics:m ()
  in
  Alcotest.(check bool) "replayed" true (report.Report.replayed_txns > 0);
  let spans = complete_spans tr in
  let find name =
    match
      List.find_opt
        (fun (e : Tracer.event) -> e.Tracer.name = name && e.Tracer.cat = "recovery")
        spans
    with
    | Some e -> e
    | None -> Alcotest.failf "missing recovery span %S" name
  in
  let load = find "load-log"
  and scan = find "scan"
  and revert = find "revert"
  and replay = find "replay" in
  Alcotest.(check bool) "durations sane" true
    (load.Tracer.dur >= 0.0 && scan.Tracer.dur >= 0.0 && revert.Tracer.dur >= 0.0
   && replay.Tracer.dur > 0.0);
  (* The replayed epoch's phase spans sit inside the replay span. *)
  let eps = 1e-6 in
  let replay_end = replay.Tracer.ts +. replay.Tracer.dur in
  let epoch_spans =
    List.filter (fun (e : Tracer.event) -> e.Tracer.cat = "epoch") spans
  in
  Alcotest.(check bool) "replay recorded epoch spans" true (epoch_spans <> []);
  List.iter
    (fun (e : Tracer.event) ->
      if e.Tracer.ts < replay.Tracer.ts -. eps || e.Tracer.ts +. e.Tracer.dur > replay_end +. eps
      then Alcotest.failf "epoch span %s escapes the replay span" e.Tracer.name)
    epoch_spans;
  (* The replayed epoch also produced a metrics record. *)
  Alcotest.(check bool) "replay metrics" true (Metrics.records m <> [])

(* ------------------------------------------------------------------ *)
(* Histogram percentile edge cases (satellite).                        *)

let test_histogram_edges () =
  let h = Histogram.create () in
  Alcotest.(check bool) "empty percentile is nan" true (Float.is_nan (Histogram.percentile h 50.0));
  Alcotest.(check (list (pair (float 0.0) int))) "empty buckets" [] (Histogram.buckets h);
  Histogram.add h 42.0;
  Alcotest.(check (float 0.0)) "single p0" 42.0 (Histogram.percentile h 0.0);
  Alcotest.(check (float 0.0)) "single p50" 42.0 (Histogram.percentile h 50.0);
  Alcotest.(check (float 0.0)) "single p100" 42.0 (Histogram.percentile h 100.0);
  let h2 = Histogram.create () in
  List.iter (Histogram.add h2) [ 1.0; 10.0; 100.0; 1000.0 ];
  Alcotest.(check (float 0.0)) "p0 is min" 1.0 (Histogram.percentile h2 0.0);
  Alcotest.(check (float 0.0)) "p100 is max" 1000.0 (Histogram.percentile h2 100.0);
  Alcotest.(check (float 0.0)) "p<0 clamps" 1.0 (Histogram.percentile h2 (-3.0));
  Alcotest.(check (float 0.0)) "p>100 clamps" 1000.0 (Histogram.percentile h2 250.0);
  let p50 = Histogram.percentile h2 50.0 in
  Alcotest.(check bool) "p50 within range" true (p50 >= 1.0 && p50 <= 1000.0);
  Alcotest.(check int) "bucket counts sum" (Histogram.count h2)
    (List.fold_left (fun acc (_, c) -> acc + c) 0 (Histogram.buckets h2));
  let bounds = List.map fst (Histogram.buckets h2) in
  Alcotest.(check bool) "bucket bounds ascending" true
    (List.sort compare bounds = bounds)

(* ------------------------------------------------------------------ *)
(* Domain-safety: counters/gauges/histograms hammered from four
   domains at once lose nothing.                                       *)

let test_metrics_domain_safety () =
  let m = Metrics.create () in
  let c = Metrics.counter m "hammer.count" in
  let g = Metrics.gauge m "hammer.level" in
  let h = Metrics.histogram m "hammer.lat" in
  let pool = Nv_util.Dpool.shared ~width:4 in
  let iters = 25_000 in
  ignore
    (Nv_util.Dpool.run pool ~n:4 (fun i ->
         for k = 1 to iters do
           Metrics.add c 1;
           Metrics.observe h (float_of_int ((k land 7) + i));
           Metrics.set_gauge g (float_of_int k)
         done));
  let fields = Metrics.snapshot m ~epoch:1 in
  (match List.assoc "hammer.count" fields with
  | Jsonx.Int n -> Alcotest.(check int) "no lost counter increments" (4 * iters) n
  | _ -> Alcotest.fail "counter field not an int");
  (match List.assoc "hammer.lat" fields with
  | Jsonx.Assoc kv -> (
      match List.assoc "count" kv with
      | Jsonx.Int n -> Alcotest.(check int) "no lost histogram samples" (4 * iters) n
      | _ -> Alcotest.fail "histogram count not an int")
  | _ -> Alcotest.fail "histogram field not an object");
  (match List.assoc "hammer.level" fields with
  | Jsonx.Float v -> Alcotest.(check bool) "gauge holds one of the written values" true
                       (v >= 1.0 && v <= float_of_int iters)
  | _ -> Alcotest.fail "gauge field not a float");
  (* Counters and histograms reset on snapshot; the gauge persists. *)
  let fields2 = Metrics.snapshot m ~epoch:2 in
  (match List.assoc "hammer.count" fields2 with
  | Jsonx.Int n -> Alcotest.(check int) "counter reset by snapshot" 0 n
  | _ -> Alcotest.fail "counter field not an int");
  match List.assoc "hammer.lat" fields2 with
  | Jsonx.Assoc kv -> (
      match List.assoc "count" kv with
      | Jsonx.Int n -> Alcotest.(check int) "histogram reset by snapshot" 0 n
      | _ -> Alcotest.fail "histogram count not an int")
  | _ -> Alcotest.fail "histogram field not an object"

(* ------------------------------------------------------------------ *)
(* Dual clocks: wall capture is opt-in, mirrored into "(wall time)"
   processes on export, and absent byte-for-byte when not installed.   *)

let test_tracer_dual_clock () =
  let tr = Tracer.create () in
  Alcotest.(check bool) "wall off by default" false (Tracer.wall_enabled tr);
  Alcotest.(check bool) "wall_now is nan when off" true (Float.is_nan (Tracer.wall_now tr));
  Tracer.set_clock tr (fun _ -> 100.0);
  Tracer.open_process tr ~name:"run";
  Tracer.complete tr ~core:0 ~name:"sim-only" ~cat:"t" ~ts:0.0 ~dur:10.0 ();
  let contains_wall s =
    let needle = "(wall time)" in
    let n = String.length needle and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "no wall mirror without a wall clock" false
    (contains_wall (Jsonx.to_string (Trace_export.to_json tr)));
  (* Now with the wall clock installed: spans carry wall readings and
     the export mirrors them at pid + 1000. *)
  Tracer.set_wall_clock tr (Some Nv_util.Clock.now_ns);
  Alcotest.(check bool) "wall enabled" true (Tracer.wall_enabled tr);
  let w0 = Tracer.wall_now tr in
  Alcotest.(check bool) "wall_now reads the clock" true (w0 > 0.0);
  ignore (Tracer.span tr ~core:1 ~name:"dual" ~cat:"t" (fun () -> Sys.opaque_identity 42));
  let ev =
    match List.find_opt (fun (e : Tracer.event) -> e.Tracer.name = "dual") (Tracer.events tr) with
    | Some e -> e
    | None -> Alcotest.fail "dual span not recorded"
  in
  Alcotest.(check bool) "wts captured" true (not (Float.is_nan ev.Tracer.wts));
  Alcotest.(check bool) "wdur captured" true (ev.Tracer.wdur >= 0.0);
  let with_wall = Trace_export.to_json tr in
  Alcotest.(check bool) "wall mirror labeled in export" true
    (contains_wall (Jsonx.to_string with_wall));
  let wall_pids =
    match with_wall with
    | Jsonx.Assoc kv -> (
        match List.assoc "traceEvents" kv with
        | Jsonx.List evs ->
            List.filter_map
              (fun e ->
                match e with
                | Jsonx.Assoc fields -> (
                    match (List.assoc_opt "name" fields, List.assoc_opt "pid" fields) with
                    | Some (Jsonx.String "dual"), Some (Jsonx.Int pid) -> Some pid
                    | _ -> None)
                | _ -> None)
              evs
        | _ -> [])
    | _ -> []
  in
  (match List.sort compare wall_pids with
  | [ p1; p2 ] -> Alcotest.(check int) "wall mirror at pid+1000" (p1 + 1000) p2
  | other -> Alcotest.failf "expected 2 'dual' events, got %d" (List.length other));
  (* The sim-only span recorded before the wall clock was installed is
     not mirrored: its wall fields are nan. *)
  let sim_only_pids =
    match with_wall with
    | Jsonx.Assoc kv -> (
        match List.assoc "traceEvents" kv with
        | Jsonx.List evs ->
            List.length
              (List.filter
                 (fun e ->
                   match e with
                   | Jsonx.Assoc fields -> (
                       match List.assoc_opt "name" fields with
                       | Some (Jsonx.String "sim-only") -> true
                       | _ -> false)
                   | _ -> false)
                 evs)
        | _ -> 0)
    | _ -> 0
  in
  Alcotest.(check int) "nan-wall span not mirrored" 1 sim_only_pids

(* ------------------------------------------------------------------ *)
(* Profiler: phase aggregation, Gc deltas, slow-epoch detection.       *)

let test_profile_phases () =
  let slow = ref [] in
  let p = Nv_obs.Profile.create ~slow_threshold_ns:0.0 ~on_slow:(fun se -> slow := se :: !slow) () in
  Alcotest.(check bool) "enabled" true (Nv_obs.Profile.enabled p);
  for epoch = 1 to 3 do
    Nv_obs.Profile.epoch_begin p ~epoch;
    ignore
      (Nv_obs.Profile.phase p "alloc" (fun () ->
           (* Minor-heap churn: cons cells + tuples. (Major-heap counters
              in Gc.quick_stat lag behind GC slices on OCaml 5, so the
              test pins the minor counter only.) *)
           let acc = ref [] in
           for k = 0 to 9_999 do
             acc := (k, k) :: !acc
           done;
           Sys.opaque_identity !acc));
    Nv_obs.Profile.phase p "spin" (fun () -> ());
    Nv_obs.Profile.epoch_end p
  done;
  Alcotest.(check int) "epochs bracketed" 3 (Nv_obs.Profile.epochs p);
  Alcotest.(check bool) "total wall accumulates" true (Nv_obs.Profile.total_wall_ns p > 0.0);
  let stats = Nv_obs.Profile.stats p in
  Alcotest.(check (list string)) "phases in first-use order" [ "alloc"; "spin" ]
    (List.map fst stats);
  let alloc = List.assoc "alloc" stats in
  Alcotest.(check int) "alloc called thrice" 3 alloc.Nv_obs.Profile.calls;
  Alcotest.(check bool) "alloc wall time > 0" true (alloc.Nv_obs.Profile.wall_ns > 0.0);
  Alcotest.(check bool) "alloc minor words counted" true
    (alloc.Nv_obs.Profile.minor_words +. alloc.Nv_obs.Profile.major_words > 0.0);
  (* Threshold 0 makes every epoch slow; phases are attributed. *)
  Alcotest.(check int) "every epoch slow at threshold 0" 3 (Nv_obs.Profile.slow_epoch_count p);
  Alcotest.(check int) "on_slow fired per epoch" 3 (List.length !slow);
  List.iter
    (fun (se : Nv_obs.Profile.slow_epoch) ->
      Alcotest.(check bool) "slow epoch names its phases" true
        (List.mem_assoc "alloc" se.Nv_obs.Profile.phases))
    !slow;
  (* A phase that raises still charges its time. *)
  (match Nv_obs.Profile.phase p "raiser" (fun () -> failwith "boom") with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "exception swallowed");
  let raiser = List.assoc "raiser" (Nv_obs.Profile.stats p) in
  Alcotest.(check int) "raising phase charged" 1 raiser.Nv_obs.Profile.calls;
  (* JSON snapshot carries the same aggregates. *)
  (match Nv_obs.Profile.to_json p with
  | Jsonx.Assoc kv ->
      (match List.assoc "epochs" kv with
      | Jsonx.Int n -> Alcotest.(check int) "json epochs" 3 n
      | _ -> Alcotest.fail "epochs not an int");
      (match List.assoc "phases" kv with
      | Jsonx.List phs -> Alcotest.(check int) "json phase rows" 3 (List.length phs)
      | _ -> Alcotest.fail "phases not a list")
  | _ -> Alcotest.fail "to_json not an object");
  Nv_obs.Profile.reset p;
  Alcotest.(check int) "reset drops epochs" 0 (Nv_obs.Profile.epochs p);
  Alcotest.(check (list pass)) "reset drops phases" [] (Nv_obs.Profile.stats p);
  (* The null profiler no-ops. *)
  Nv_obs.Profile.epoch_begin Nv_obs.Profile.null ~epoch:1;
  ignore (Nv_obs.Profile.phase Nv_obs.Profile.null "x" (fun () -> 9));
  Nv_obs.Profile.epoch_end Nv_obs.Profile.null;
  Alcotest.(check int) "null profiler records nothing" 0
    (Nv_obs.Profile.epochs Nv_obs.Profile.null)

(* An engine run under a profiler reports the pipeline's phase names. *)
let test_profile_engine_run () =
  let p = Nv_obs.Profile.create () in
  let db = mk_db () in
  Db.set_observability ~profile:p db;
  load_n db 64;
  ignore (Db.run_epoch db (batch ~epoch:1 16));
  ignore (Db.run_epoch db (batch ~epoch:2 16));
  Alcotest.(check int) "two epochs profiled" 2 (Nv_obs.Profile.epochs p);
  let names = List.map fst (Nv_obs.Profile.stats p) in
  List.iter
    (fun required ->
      Alcotest.(check bool) ("profiled phase " ^ required) true (List.mem required names))
    [ "execute"; "append"; "epoch-persist" ]

let test_disabled_sinks () =
  (* The null sinks accept everything and record nothing. *)
  let db = mk_db () in
  Db.set_observability ~tracer:Tracer.null ~metrics:Metrics.null db;
  load_n db 32;
  ignore (Db.run_epoch db (batch ~epoch:1 10));
  Alcotest.(check int) "null tracer empty" 0 (Tracer.event_count Tracer.null);
  Alcotest.(check (list pass)) "null metrics empty" [] (Metrics.records Metrics.null);
  Alcotest.(check (list pass)) "null snapshot empty" [] (Metrics.snapshot Metrics.null ~epoch:3)

let suites =
  [
    ( "obs",
      [
        Alcotest.test_case "span nesting" `Quick test_span_nesting;
        Alcotest.test_case "metrics reconcile" `Quick test_metrics_reconcile;
        Alcotest.test_case "trace export round-trip" `Quick test_trace_export_roundtrip;
        Alcotest.test_case "recovery spans" `Quick test_recovery_spans;
        Alcotest.test_case "histogram edges" `Quick test_histogram_edges;
        Alcotest.test_case "metrics domain-safe under hammer" `Quick test_metrics_domain_safety;
        Alcotest.test_case "tracer dual clocks" `Quick test_tracer_dual_clock;
        Alcotest.test_case "profiler phases and slow epochs" `Quick test_profile_phases;
        Alcotest.test_case "profiler on an engine run" `Quick test_profile_engine_run;
        Alcotest.test_case "disabled sinks" `Quick test_disabled_sinks;
      ] );
  ]
