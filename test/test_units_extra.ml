(* Focused unit tests for modules and edge paths not covered by the
   larger scenario suites: SIDs, cost-model specs, histograms, the
   cache module in isolation, row helpers, formatting, configuration
   predicates, Zen's store, TPC-C key packing, and assorted substrate
   edges. *)

module Stats = Nv_nvmm.Stats
module Memspec = Nv_nvmm.Memspec
module Pmem = Nv_nvmm.Pmem
module Layout = Nv_nvmm.Layout
module TP = Nv_storage.Transient_pool
open Nvcaracal

let stats () = Stats.create Memspec.default

(* --- Sid --- *)

let test_sid_roundtrip () =
  let s = Sid.make ~epoch:7 ~seq:123 in
  Alcotest.(check int) "epoch" 7 (Sid.epoch_of s);
  Alcotest.(check int) "seq" 123 (Sid.seq_of s);
  Alcotest.(check bool) "none" true (Sid.is_none Sid.none);
  Alcotest.(check bool) "not none" false (Sid.is_none s)

let prop_sid_order =
  QCheck.Test.make ~name:"sid order is (epoch, seq) lexicographic" ~count:500
    QCheck.(quad (int_range 1 1000) (int_range 0 100000) (int_range 1 1000) (int_range 0 100000))
    (fun (e1, s1, e2, s2) ->
      let a = Sid.make ~epoch:e1 ~seq:s1 and b = Sid.make ~epoch:e2 ~seq:s2 in
      compare (Sid.compare a b) 0 = compare (compare (e1, s1) (e2, s2)) 0)

(* --- Memspec --- *)

let test_memspec_ratios () =
  let d = Memspec.default in
  Alcotest.(check (float 0.01)) "write ratio" 11.9 (d.Memspec.nvmm_write_block_ns /. 93.0);
  Alcotest.(check (float 0.01)) "read ratio" 3.2 (d.Memspec.nvmm_read_block_ns /. 93.0);
  let dram = Memspec.dram_only in
  Alcotest.(check (float 0.001)) "dram-only fence free" 0.0 dram.Memspec.fence_ns;
  Alcotest.(check bool) "dram-only cheaper" true
    (dram.Memspec.nvmm_write_block_ns < d.Memspec.nvmm_write_block_ns)

let test_lines_touched () =
  let d = Memspec.default in
  Alcotest.(check int) "one line" 1 (Memspec.lines_touched d ~off:0 ~len:64);
  Alcotest.(check int) "straddle" 2 (Memspec.lines_touched d ~off:60 ~len:8);
  Alcotest.(check int) "empty" 0 (Memspec.lines_touched d ~off:0 ~len:0)

(* --- Stats --- *)

let test_stats_counters_merge () =
  let a = stats () and b = stats () in
  Stats.dram_read a ();
  Stats.nvmm_write b ~off:0 ~len:256;
  Stats.fence b;
  let m = Stats.merge_counters (Stats.counters a) (Stats.counters b) in
  Alcotest.(check int) "dram reads" 1 m.Stats.dram_reads;
  Alcotest.(check int) "nvmm writes" 1 m.Stats.nvmm_block_writes;
  Alcotest.(check int) "fences" 1 m.Stats.fences;
  Stats.reset a;
  Alcotest.(check (float 0.0)) "reset clock" 0.0 (Stats.now a);
  Alcotest.(check int) "reset counters" 0 (Stats.counters a).Stats.dram_reads

let test_stats_line_charges () =
  let s = stats () in
  Stats.nvmm_write_lines s 4;
  (* Four lines = one 256 B block worth of time and count. *)
  Alcotest.(check int) "blocks counted" 1 (Stats.counters s).Stats.nvmm_block_writes;
  Alcotest.(check (float 0.5)) "time equals one block"
    Memspec.default.Memspec.nvmm_write_block_ns (Stats.now s)

(* --- Histogram edge cases --- *)

let test_histogram_empty () =
  let h = Nv_util.Histogram.create () in
  Alcotest.(check bool) "empty mean is nan" true (Float.is_nan (Nv_util.Histogram.mean h));
  Alcotest.(check bool) "empty percentile is nan" true
    (Float.is_nan (Nv_util.Histogram.percentile h 50.0))

let prop_histogram_percentile_bounded =
  QCheck.Test.make ~name:"histogram percentiles stay within range" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 100) (float_bound_inclusive 1e6))
    (fun samples ->
      let h = Nv_util.Histogram.create () in
      List.iter (Nv_util.Histogram.add h) samples;
      let p50 = Nv_util.Histogram.percentile h 50.0 in
      let mx = Nv_util.Histogram.max_value h in
      p50 <= mx +. 1e-6 && p50 >= 0.0)

(* --- Version arrays in isolation --- *)

module VA = Nvcaracal.Version_array

let test_version_array_basics () =
  let s = stats () in
  let va = VA.create ~epoch:3 ~nvmm_resident:false () in
  Alcotest.(check int) "empty" 0 (VA.length va);
  Alcotest.(check bool) "max of empty" true (Sid.is_none (VA.max_sid va));
  let sid i = Sid.make ~epoch:3 ~seq:i in
  (* Out-of-order appends stay sorted. *)
  List.iter (fun i -> VA.append va s (sid i)) [ 5; 1; 9; 3 ];
  Alcotest.(check int) "length" 4 (VA.length va);
  Alcotest.(check bool) "max sid" true (Sid.compare (VA.max_sid va) (sid 9) = 0);
  let order = ref [] in
  VA.iter va (fun slot -> order := Sid.seq_of slot.VA.sid :: !order);
  Alcotest.(check (list int)) "sorted" [ 1; 3; 5; 9 ] (List.rev !order);
  Alcotest.check_raises "duplicate sid"
    (Invalid_argument "Version_array.append: duplicate SID") (fun () -> VA.append va s (sid 5))

let test_version_array_visibility () =
  let s = stats () in
  let tp = TP.create ~cores:1 ~initial_capacity:256 in
  let va = VA.create ~epoch:3 ~nvmm_resident:false () in
  let sid i = Sid.make ~epoch:3 ~seq:i in
  List.iter (fun i -> VA.append va s (sid i)) [ 0; 2; 4 ];
  let fill i tag state =
    let slot = VA.find va s (sid i) in
    slot.VA.value <-
      (match state with
      | `W -> VA.Written (TP.write tp s ~core:0 (Bytes.make 4 tag))
      | `I -> VA.Ignored
      | `T -> VA.Tombstone)
  in
  fill 0 'a' `W;
  fill 2 'b' `I;
  fill 4 'c' `W;
  (* Reader at seq 3 skips the IGNORE at 2 and sees 0's write. *)
  (match VA.latest_visible va s ~before:(sid 3) with
  | Some slot -> Alcotest.(check bool) "visible is sid 0" true (Sid.compare slot.VA.sid (sid 0) = 0)
  | None -> Alcotest.fail "expected a visible version");
  (* Reader at seq 1 also sees 0. *)
  (match VA.latest_visible va s ~before:(sid 1) with
  | Some slot -> Alcotest.(check bool) "sid 0 again" true (Sid.compare slot.VA.sid (sid 0) = 0)
  | None -> Alcotest.fail "expected a visible version");
  (* Reader below everything sees nothing. *)
  Alcotest.(check bool) "nothing below" true (VA.latest_visible va s ~before:(sid 0) = None);
  (* latest_resolved skips the trailing... 4 is written, so it wins. *)
  (match VA.latest_resolved va s with
  | Some slot -> Alcotest.(check bool) "resolved is 4" true (Sid.compare slot.VA.sid (sid 4) = 0)
  | None -> Alcotest.fail "expected resolved");
  (* Tombstone counts as resolved. *)
  fill 4 '_' `T;
  match VA.latest_resolved va s with
  | Some { VA.value = VA.Tombstone; _ } -> ()
  | _ -> Alcotest.fail "expected tombstone"

let test_version_array_pending_violation () =
  let s = stats () in
  let va = VA.create ~epoch:3 ~nvmm_resident:false () in
  VA.append va s (Sid.make ~epoch:3 ~seq:0);
  Alcotest.check_raises "pending predecessor"
    (Invalid_argument "Version_array.latest_visible: PENDING predecessor (serial order violated)")
    (fun () -> ignore (VA.latest_visible va s ~before:(Sid.make ~epoch:3 ~seq:5)))

let test_version_array_charging_modes () =
  (* Batch append is O(1); sorted insert grows with array length.
     NVMM-resident arrays charge NVMM instead of DRAM. *)
  let grow_cost ~batch =
    let s = stats () in
    let va = VA.create ~epoch:2 ~nvmm_resident:false ~batch_append:batch () in
    for i = 0 to 199 do
      VA.append va s (Sid.make ~epoch:2 ~seq:i)
    done;
    Stats.now s
  in
  Alcotest.(check bool) "batch append cheaper" true (grow_cost ~batch:true < grow_cost ~batch:false);
  let s = stats () in
  let va = VA.create ~epoch:2 ~nvmm_resident:true () in
  VA.append va s (Sid.make ~epoch:2 ~seq:0);
  Alcotest.(check bool) "nvmm-resident charges nvmm" true
    ((Stats.counters s).Stats.nvmm_block_writes > 0)

(* --- Cache module in isolation --- *)

let mk_row key =
  Row.make ~key ~table:0 ~home_core:0 ~prow_base:0 ~created_epoch:0

let test_cache_capacity_and_eviction () =
  let s = stats () in
  let c = Cache.create ~max_entries:2 in
  let r1 = mk_row 1L and r2 = mk_row 2L and r3 = mk_row 3L in
  Cache.insert c s r1 ~data:(Bytes.make 8 'a') ~epoch:1;
  Cache.insert c s r2 ~data:(Bytes.make 8 'b') ~epoch:1;
  (* Full: a third insert is refused. *)
  Cache.insert c s r3 ~data:(Bytes.make 8 'c') ~epoch:1;
  Alcotest.(check int) "capped" 2 (Cache.entries c);
  Alcotest.(check bool) "r3 uncached" true (r3.Row.cached = None);
  (* r1 stays hot; r2 goes cold; K=1 eviction at epoch 3 drops r2. *)
  Cache.touch c r1 ~epoch:2;
  Alcotest.(check int) "hits" 1 (Cache.hits c);
  let evicted = Cache.evict c s ~current_epoch:3 ~k:1 in
  Alcotest.(check int) "one evicted" 1 evicted;
  Alcotest.(check bool) "r2 gone" true (r2.Row.cached = None);
  Alcotest.(check bool) "r1 kept" true (r1.Row.cached <> None);
  (* Now room for r3. *)
  Cache.insert c s r3 ~data:(Bytes.make 8 'c') ~epoch:3;
  Alcotest.(check int) "refilled" 2 (Cache.entries c);
  Cache.drop c s r1;
  Cache.drop c s r1 (* idempotent *);
  Alcotest.(check int) "dropped" 1 (Cache.entries c);
  Alcotest.(check bool) "bytes tracked" true (Cache.data_bytes c = 8)

let test_cache_refresh_updates_bytes () =
  let s = stats () in
  let c = Cache.create ~max_entries:4 in
  let r = mk_row 1L in
  Cache.insert c s r ~data:(Bytes.make 8 'a') ~epoch:1;
  Cache.insert c s r ~data:(Bytes.make 100 'b') ~epoch:2;
  Alcotest.(check int) "one entry" 1 (Cache.entries c);
  Alcotest.(check int) "bytes follow refresh" 100 (Cache.data_bytes c)

(* --- Row helpers --- *)

let test_row_halves () =
  let row_size = 256 in
  let cap = Nv_storage.Prow.half_capacity ~row_size in
  Alcotest.(check int) "half capacity" 84 cap;
  let v0 =
    { Row.psid = 1L; pptr = Nv_storage.Vptr.inline ~heap_off:0 ~len:8; fresh = false }
  in
  let v1 =
    { Row.psid = 2L; pptr = Nv_storage.Vptr.inline ~heap_off:cap ~len:8; fresh = false }
  in
  Alcotest.(check int) "free half vs half0" 1 (Row.free_half ~row_size v0);
  Alcotest.(check int) "free half vs half1" 0 (Row.free_half ~row_size v1);
  Alcotest.(check int) "free half vs null" 0 (Row.free_half ~row_size Row.no_version)

let test_table4_row_sizes_inline () =
  (* The "optimal" Table 4 row sizes inline the benchmark values. *)
  Alcotest.(check bool) "2304 rows inline 1000B" true
    (Nv_storage.Prow.half_capacity ~row_size:2304 >= 1000);
  Alcotest.(check bool) "128 rows inline 8B" true
    (Nv_storage.Prow.half_capacity ~row_size:128 >= 8);
  Alcotest.(check int) "paper heap at 256" 168 (Nv_storage.Prow.inline_heap_bytes ~row_size:256)

(* --- Config predicates --- *)

let test_config_predicates () =
  let open Config in
  let mk variant = make ~variant () in
  Alcotest.(check bool) "nvcaracal logs" true (logging_enabled (mk Nvcaracal));
  List.iter
    (fun v -> Alcotest.(check bool) (variant_name v ^ " no log") false (logging_enabled (mk v)))
    [ All_nvmm; Hybrid; No_logging; All_dram; Wal ];
  Alcotest.(check bool) "all-nvmm no cache" false (caching_enabled (mk All_nvmm));
  Alcotest.(check bool) "hybrid caches" true (caching_enabled (mk Hybrid));
  Alcotest.(check bool) "wal redo-logs" true (redo_logs_updates (mk Wal));
  Alcotest.(check bool) "nvcaracal no redo" false (redo_logs_updates (mk Nvcaracal));
  List.iter
    (fun v ->
      Alcotest.(check bool)
        (variant_name v ^ " persists updates")
        true
        (writes_all_updates_to_nvmm (mk v)))
    [ All_nvmm; Hybrid ]

(* --- Report --- *)

let test_report_helpers () =
  let m =
    {
      Report.nvmm_rows = 100;
      nvmm_values = 50;
      nvmm_log = 10;
      nvmm_freelists = 40;
      dram_index = 30;
      dram_transient = 20;
      dram_cache = 10;
    }
  in
  Alcotest.(check int) "nvmm total" 200 (Report.total_nvmm m);
  Alcotest.(check int) "dram total" 60 (Report.total_dram m)

(* --- Tablefmt --- *)

let test_tablefmt () =
  Alcotest.(check string) "mtps" "1.500 Mtxn/s" (Nv_harness.Tablefmt.mtps 1_500_000.0);
  Alcotest.(check string) "pct" "12.5%" (Nv_harness.Tablefmt.pct 0.125);
  Alcotest.(check string) "bytes small" "512 B" (Nv_harness.Tablefmt.bytes 512);
  Alcotest.(check string) "bytes mib" "2.00 MiB" (Nv_harness.Tablefmt.bytes (2 * 1024 * 1024));
  Alcotest.(check string) "ms" "1.50 ms" (Nv_harness.Tablefmt.ms 1_500_000.0);
  let buf = Buffer.create 64 in
  let ppf = Format.formatter_of_buffer buf in
  Nv_harness.Tablefmt.print ppf ~title:"t" ~header:[ "a"; "bb" ] [ [ "1"; "2" ] ];
  Format.pp_print_flush ppf ();
  Alcotest.(check bool) "renders" true (Buffer.length buf > 10)

(* --- Zen store --- *)

let test_zen_store_lifecycle () =
  let s = stats () in
  let b = Layout.builder () in
  let per_core, _ = Nv_zen.Zen_store.reserve b ~cores:1 ~slots_per_core:4 ~record_size:64 in
  let p = Pmem.create ~size:(Layout.total_size b) () in
  let st = Nv_zen.Zen_store.attach p ~per_core ~record_size:64 in
  let r1 = Nv_zen.Zen_store.alloc st s ~core:0 in
  Nv_zen.Zen_store.write_record st s ~off:r1 ~key:42L ~table:1 ~version:7L
    ~data:(Bytes.of_string "hello");
  let key, table, version, len = Nv_zen.Zen_store.peek st ~off:r1 in
  Alcotest.(check int64) "key" 42L key;
  Alcotest.(check int) "table" 1 table;
  Alcotest.(check int64) "version" 7L version;
  Alcotest.(check int) "len" 5 len;
  Alcotest.(check string) "value" "hello"
    (Bytes.to_string (Nv_zen.Zen_store.read_value st s ~off:r1));
  Nv_zen.Zen_store.free st ~core:0 r1;
  Alcotest.(check int) "freelist" 1 (Nv_zen.Zen_store.free_list_slots st);
  Alcotest.(check int) "reused" r1 (Nv_zen.Zen_store.alloc st s ~core:0);
  Nv_zen.Zen_store.invalidate st s ~off:r1;
  let _, _, version, _ = Nv_zen.Zen_store.peek st ~off:r1 in
  Alcotest.(check int64) "invalidated" 0L version

let test_zen_store_exhaustion () =
  let s = stats () in
  let b = Layout.builder () in
  let per_core, _ = Nv_zen.Zen_store.reserve b ~cores:1 ~slots_per_core:2 ~record_size:64 in
  let p = Pmem.create ~size:(Layout.total_size b) () in
  let st = Nv_zen.Zen_store.attach p ~per_core ~record_size:64 in
  ignore (Nv_zen.Zen_store.alloc st s ~core:0);
  ignore (Nv_zen.Zen_store.alloc st s ~core:0);
  Alcotest.check_raises "full" (Failure "Zen_store.alloc: arena full") (fun () ->
      ignore (Nv_zen.Zen_store.alloc st s ~core:0))

(* --- TPC-C key packing --- *)

let prop_tpcc_keys_injective =
  QCheck.Test.make ~name:"tpcc order-line keys are injective" ~count:300
    QCheck.(
      pair
        (quad (int_range 0 7) (int_range 0 9) (int_range 0 10000) (int_range 0 14))
        (quad (int_range 0 7) (int_range 0 9) (int_range 0 10000) (int_range 0 14)))
    (fun ((w1, d1, o1, l1), (w2, d2, o2, l2)) ->
      let k1 = Nv_workloads.Tpcc.order_line_key ~w:w1 ~d:d1 ~o:o1 ~line:l1 in
      let k2 = Nv_workloads.Tpcc.order_line_key ~w:w2 ~d:d2 ~o:o2 ~line:l2 in
      (k1 = k2) = ((w1, d1, o1, l1) = (w2, d2, o2, l2)))

let test_tpcc_key_spaces_disjoint_per_district () =
  (* Order keys sort by district code then order id, which is what the
     Delivery min_above scan relies on. *)
  let k_low = Nv_workloads.Tpcc.order_key ~w:0 ~d:1 ~o:999999 in
  let k_high = Nv_workloads.Tpcc.order_key ~w:0 ~d:2 ~o:0 in
  Alcotest.(check bool) "district ordering" true (Int64.compare k_low k_high < 0)

(* --- Workload metadata --- *)

let test_workload_total_rows () =
  let w = Nv_workloads.Ycsb.make { Nv_workloads.Ycsb.default with Nv_workloads.Ycsb.rows = 77 } in
  Alcotest.(check int) "ycsb rows" 77 (Nv_workloads.Workload.total_rows w);
  let sb =
    Nv_workloads.Smallbank.make
      { Nv_workloads.Smallbank.default with Nv_workloads.Smallbank.customers = 10 }
  in
  Alcotest.(check int) "smallbank rows (2 tables)" 20 (Nv_workloads.Workload.total_rows sb)

(* --- Substrate edges --- *)

let test_pmem_fill_and_ranges () =
  let s = stats () in
  let p = Pmem.create ~mode:Pmem.Crash_safe ~size:1024 () in
  Pmem.fill p ~off:100 ~len:50 'x';
  Alcotest.(check string) "fill" (String.make 50 'x')
    (Bytes.to_string (Pmem.read_bytes p ~off:100 ~len:50));
  Alcotest.(check bool) "dirty" true (Pmem.dirty_line_count p > 0);
  Alcotest.(check bool) "ranges listed" true (List.length (Pmem.unpersisted_ranges p) > 0);
  Pmem.persist p s ~off:100 ~len:50;
  Alcotest.(check int) "clean" 0 (Pmem.dirty_line_count p)

let test_layout_not_found () =
  let b = Layout.builder () in
  ignore (Layout.reserve b ~name:"x" ~len:8 ());
  Alcotest.check_raises "unknown region" Not_found (fun () -> ignore (Layout.find b "y"))

let test_bump_fresh_recover () =
  let p = Pmem.create ~size:64 () in
  let b = Nv_storage.Bump.create p ~meta_off:0 ~capacity:10 in
  ignore (Nv_storage.Bump.alloc b);
  ignore (Nv_storage.Bump.recover b ~last_checkpointed_epoch:0);
  Alcotest.(check int) "never-checkpointed reverts to zero" 0 (Nv_storage.Bump.offset b)

let test_log_overflow () =
  let s = stats () in
  let b = Layout.builder () in
  let r = Nv_storage.Log_region.reserve b ~capacity_bytes:64 in
  let p = Pmem.create ~size:(Layout.total_size b) () in
  let log = Nv_storage.Log_region.attach p r in
  Nv_storage.Log_region.begin_epoch log s ~epoch:2;
  Nv_storage.Log_region.append log s (Bytes.make 40 'a');
  Alcotest.check_raises "overflow" (Failure "Log_region.append: log region full") (fun () ->
      Nv_storage.Log_region.append log s (Bytes.make 40 'b'))

let test_rng_copy_independent () =
  let a = Nv_util.Rng.create 5 in
  let b = Nv_util.Rng.copy a in
  Alcotest.(check int64) "copies agree" (Nv_util.Rng.next_int64 a) (Nv_util.Rng.next_int64 b)

let test_zipf_single_element () =
  let z = Nv_util.Zipf.create ~n:1 ~theta:0.99 in
  let rng = Nv_util.Rng.create 1 in
  for _ = 1 to 100 do
    Alcotest.(check int) "only rank" 0 (Nv_util.Zipf.sample z rng)
  done;
  Alcotest.(check int) "n" 1 (Nv_util.Zipf.n z)

let suites =
  [
    ( "units",
      [
        Alcotest.test_case "sid roundtrip" `Quick test_sid_roundtrip;
        QCheck_alcotest.to_alcotest prop_sid_order;
        Alcotest.test_case "memspec ratios" `Quick test_memspec_ratios;
        Alcotest.test_case "lines touched" `Quick test_lines_touched;
        Alcotest.test_case "stats merge/reset" `Quick test_stats_counters_merge;
        Alcotest.test_case "stats line charges" `Quick test_stats_line_charges;
        Alcotest.test_case "histogram empty" `Quick test_histogram_empty;
        QCheck_alcotest.to_alcotest prop_histogram_percentile_bounded;
        Alcotest.test_case "version array basics" `Quick test_version_array_basics;
        Alcotest.test_case "version array visibility" `Quick test_version_array_visibility;
        Alcotest.test_case "version array pending" `Quick test_version_array_pending_violation;
        Alcotest.test_case "version array charging" `Quick test_version_array_charging_modes;
        Alcotest.test_case "cache capacity/eviction" `Quick test_cache_capacity_and_eviction;
        Alcotest.test_case "cache refresh" `Quick test_cache_refresh_updates_bytes;
        Alcotest.test_case "row halves" `Quick test_row_halves;
        Alcotest.test_case "table4 inlining" `Quick test_table4_row_sizes_inline;
        Alcotest.test_case "config predicates" `Quick test_config_predicates;
        Alcotest.test_case "report helpers" `Quick test_report_helpers;
        Alcotest.test_case "tablefmt" `Quick test_tablefmt;
        Alcotest.test_case "zen store lifecycle" `Quick test_zen_store_lifecycle;
        Alcotest.test_case "zen store exhaustion" `Quick test_zen_store_exhaustion;
        QCheck_alcotest.to_alcotest prop_tpcc_keys_injective;
        Alcotest.test_case "tpcc key ordering" `Quick test_tpcc_key_spaces_disjoint_per_district;
        Alcotest.test_case "workload total rows" `Quick test_workload_total_rows;
        Alcotest.test_case "pmem fill/ranges" `Quick test_pmem_fill_and_ranges;
        Alcotest.test_case "layout not found" `Quick test_layout_not_found;
        Alcotest.test_case "bump fresh recover" `Quick test_bump_fresh_recover;
        Alcotest.test_case "log overflow" `Quick test_log_overflow;
        Alcotest.test_case "rng copy" `Quick test_rng_copy_independent;
        Alcotest.test_case "zipf single" `Quick test_zipf_single_element;
      ] );
  ]
