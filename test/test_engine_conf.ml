(* Engine-interface conformance: the same test body runs against every
   Engine_intf.S instance (NVCaracal serial, NVCaracal Aria, Zen), so a
   backend can only pass by honouring the shared contract — batch order
   is serial order, committed reads see checkpoint state, deferred
   transactions commit once resubmitted. *)

module Engine_intf = Nvcaracal.Engine_intf
module Config = Nvcaracal.Config
module Table = Nvcaracal.Table
module Txn = Nvcaracal.Txn

let tables = [ Table.make ~id:0 ~name:"conf" () ]

let caracal_config () =
  Config.make ~cores:2 ~row_size:128 ~rows_per_core:4096 ~values_per_core:4096
    ~freelist_capacity:8192 ~log_capacity:(1 lsl 20) ()

let zen_config () =
  {
    Nv_zen.Zen_db.default_config with
    Nv_zen.Zen_db.cores = 2;
    record_size = 64;
    cache_entries = 256;
    slots_per_core = 4096;
  }

(* Each entry builds a fresh engine over one hash table (id 0). *)
let engines : (string * (unit -> Engine_intf.packed)) list =
  [
    ( "nvcaracal",
      fun () ->
        Engine_intf.Packed
          ( (module Nvcaracal.Db.Serial_engine),
            Nvcaracal.Db.Serial_engine.create ~config:(caracal_config ()) ~tables () ) );
    ( "aria",
      fun () ->
        Engine_intf.Packed
          ( (module Nvcaracal.Db.Aria_engine),
            Nvcaracal.Db.Aria_engine.create ~config:(caracal_config ()) ~tables () ) );
    ( "zen",
      fun () ->
        Engine_intf.Packed
          ( (module Nv_zen.Zen_db.Engine),
            Nv_zen.Zen_db.Engine.create ~config:(zen_config ()) ~tables () ) );
    (* The composite engines: a 3-node hash-sharded cluster and a
       primary/replica pair, each behind the same seam — the contract
       holds whether "the engine" is one process or a deployment. *)
    ( "partition",
      fun () ->
        Engine_intf.Packed
          ( (module Nvcaracal.Partition.Engine),
            Nvcaracal.Partition.Engine.create
              ~config:{ Nvcaracal.Partition.e_config = caracal_config (); e_nodes = 3 }
              ~tables () ) );
    ( "replication",
      fun () ->
        Engine_intf.Packed
          ( (module Nvcaracal.Replication.Engine),
            Nvcaracal.Replication.Engine.create
              ~config:
                {
                  Nvcaracal.Replication.e_config = caracal_config ();
                  (* The ship queue is never drained here, so the
                     replica-side rebuild is unreachable. *)
                  e_rebuild =
                    (fun _ -> Txn.make ~input:Bytes.empty ~write_set:[] (fun _ -> ()));
                }
              ~tables () ) );
  ]

let value i =
  let b = Bytes.create 16 in
  Bytes.set_int64_le b 0 (Int64.of_int i);
  Bytes.set_int64_le b 8 (Int64.of_int (i * 7));
  b

let load n = Seq.init n (fun i -> (0, Int64.of_int i, value i))

(* A declared-write-set update (serial CC needs the declaration; Aria
   and Zen ignore it). *)
let set_txn ~key v =
  Txn.make ~input:Bytes.empty
    ~write_set:[ Txn.Update { table = 0; key } ]
    (fun ctx -> ctx.Txn.Ctx.write ~table:0 ~key v)

let abort_txn ~key =
  Txn.make ~input:Bytes.empty
    ~write_set:[ Txn.Update { table = 0; key } ]
    (fun ctx -> ctx.Txn.Ctx.abort ())

(* Run a batch to completion: deferring engines (Aria) return conflict
   victims for resubmission; feed them back until none remain. *)
let drain (type e) (module E : Engine_intf.S with type t = e) (db : e) batch =
  let rec go batch rounds =
    if Array.length batch > 0 then begin
      if rounds > 10 then Alcotest.fail "deferred transactions never drained";
      let _, d = E.run_batch db batch in
      go d (rounds + 1)
    end
  in
  go batch 0

let get (type e) (module E : Engine_intf.S with type t = e) (db : e) key =
  E.read_committed db ~table:0 ~key:(Int64.of_int key)

let check_bytes name expected actual =
  Alcotest.(check (option bytes)) name expected actual

(* ------------------------------------------------------------------ *)
(* The conformance cases, each generic in the packed engine.           *)

let test_bulk_load_reads mk () =
  match mk () with
  | Engine_intf.Packed ((module E), db) ->
      E.bulk_load db (load 100);
      check_bytes "loaded key 0" (Some (value 0)) (get (module E) db 0);
      check_bytes "loaded key 99" (Some (value 99)) (get (module E) db 99);
      check_bytes "missing key" None (get (module E) db 100);
      Alcotest.(check int) "nothing committed yet" 0 (E.committed_txns db)

let test_run_batch_commits mk () =
  match mk () with
  | Engine_intf.Packed ((module E), db) ->
      E.bulk_load db (load 50);
      drain (module E) db
        (Array.init 10 (fun i -> set_txn ~key:(Int64.of_int i) (value (1000 + i))));
      Alcotest.(check int) "all committed" 10 (E.committed_txns db);
      check_bytes "updated key" (Some (value 1003)) (get (module E) db 3);
      check_bytes "untouched key" (Some (value 20)) (get (module E) db 20)

let test_iter_committed mk () =
  match mk () with
  | Engine_intf.Packed ((module E), db) ->
      E.bulk_load db (load 20);
      drain (module E) db [| set_txn ~key:5L (value 500) |];
      let seen = Hashtbl.create 32 in
      E.iter_committed db ~table:0 (fun k v ->
          if Hashtbl.mem seen k then Alcotest.fail "key visited twice";
          Hashtbl.replace seen k v);
      Alcotest.(check int) "all live keys visited" 20 (Hashtbl.length seen);
      check_bytes "iter sees the committed update" (Some (value 500))
        (Hashtbl.find_opt seen 5L)

let test_empty_batch mk () =
  match mk () with
  | Engine_intf.Packed ((module E), db) ->
      E.bulk_load db (load 10);
      drain (module E) db [||];
      drain (module E) db [||];
      Alcotest.(check int) "no commits from empty batches" 0 (E.committed_txns db);
      check_bytes "state untouched" (Some (value 7)) (get (module E) db 7)

(* Two writers to the same key in one batch: batch order is serial
   order, so the later transaction's value must win once everything
   (including any deferral) has committed. *)
let test_duplicate_key_last_wins mk () =
  match mk () with
  | Engine_intf.Packed ((module E), db) ->
      E.bulk_load db (load 10);
      drain (module E) db [| set_txn ~key:4L (value 41); set_txn ~key:4L (value 42) |];
      Alcotest.(check int) "both eventually committed" 2 (E.committed_txns db);
      check_bytes "last writer wins" (Some (value 42)) (get (module E) db 4)

(* One transaction writing the same key twice: its own last write is
   the committed value. *)
let test_duplicate_key_in_txn mk () =
  match mk () with
  | Engine_intf.Packed ((module E), db) ->
      E.bulk_load db (load 10);
      let t =
        Txn.make ~input:Bytes.empty
          ~write_set:[ Txn.Update { table = 0; key = 6L } ]
          (fun ctx ->
            ctx.Txn.Ctx.write ~table:0 ~key:6L (value 61);
            ctx.Txn.Ctx.write ~table:0 ~key:6L (value 62))
      in
      drain (module E) db [| t |];
      check_bytes "txn's last write wins" (Some (value 62)) (get (module E) db 6)

let test_user_abort mk () =
  match mk () with
  | Engine_intf.Packed ((module E), db) ->
      E.bulk_load db (load 10);
      drain (module E) db [| abort_txn ~key:2L; set_txn ~key:3L (value 33) |];
      Alcotest.(check int) "only the non-aborting txn committed" 1 (E.committed_txns db);
      Alcotest.(check int) "abort counted" 1 (E.aborted_txns db);
      check_bytes "aborted write invisible" (Some (value 2)) (get (module E) db 2);
      check_bytes "other txn committed" (Some (value 33)) (get (module E) db 3)

(* Outcome reporting is uniform across engines: a batch's per-txn
   verdicts appear (only) once its epoch checkpointed, in batch order,
   and conflict-deferred transactions are flagged as such rather than
   folded into aborts. *)
let test_last_batch_outcomes mk () =
  match mk () with
  | Engine_intf.Packed ((module E), db) ->
      E.bulk_load db (load 20);
      Alcotest.(check int) "no outcomes before first batch" 0
        (Array.length (E.last_batch_outcomes db));
      (* Disjoint keys: no engine can defer these. *)
      let _, d1 =
        E.run_batch db [| set_txn ~key:1L (value 11); abort_txn ~key:2L; set_txn ~key:3L (value 33) |]
      in
      Alcotest.(check int) "nothing deferred on disjoint keys" 0 (Array.length d1);
      let o = E.last_batch_outcomes db in
      Alcotest.(check int) "one outcome per txn" 3 (Array.length o);
      Alcotest.(check bool) "txn 0 committed" true (o.(0) = `Committed);
      Alcotest.(check bool) "txn 1 aborted" true (o.(1) = `Aborted);
      Alcotest.(check bool) "txn 2 committed" true (o.(2) = `Committed);
      (* Same key twice in one batch: serial engines commit both; a
         deferring engine must report exactly the returned victims as
         [`Deferred]. *)
      let _, d2 = E.run_batch db [| set_txn ~key:7L (value 71); set_txn ~key:7L (value 72) |] in
      let o2 = E.last_batch_outcomes db in
      Alcotest.(check int) "conflict batch outcome count" 2 (Array.length o2);
      let deferred_flags =
        Array.fold_left (fun acc x -> if x = `Deferred then acc + 1 else acc) 0 o2
      in
      Alcotest.(check int) "deferred flags match returned victims"
        (Array.length d2) deferred_flags;
      Alcotest.(check bool) "no outcome is a final abort" true
        (Array.for_all (fun x -> x <> `Aborted) o2);
      drain (module E) db d2;
      Alcotest.(check int) "every non-aborting txn eventually committed" 4
        (E.committed_txns db)

let test_time_advances mk () =
  match mk () with
  | Engine_intf.Packed ((module E), db) ->
      E.bulk_load db (load 50);
      let t0 = E.total_time_ns db in
      drain (module E) db
        (Array.init 8 (fun i -> set_txn ~key:(Int64.of_int i) (value (200 + i))));
      Alcotest.(check bool) "simulated time advanced" true (E.total_time_ns db > t0);
      let m = E.mem_report db in
      Alcotest.(check bool) "engine reports NVMM row storage" true
        (m.Nvcaracal.Report.nvmm_rows > 0)

let suites =
  List.map
    (fun (name, mk) ->
      ( "engine-conf:" ^ name,
        [
          Alcotest.test_case "bulk_load then read_committed" `Quick
            (test_bulk_load_reads mk);
          Alcotest.test_case "run_batch commits in serial order" `Quick
            (test_run_batch_commits mk);
          Alcotest.test_case "iter_committed visits live keys once" `Quick
            (test_iter_committed mk);
          Alcotest.test_case "empty batch is a no-op" `Quick (test_empty_batch mk);
          Alcotest.test_case "duplicate key across txns: last wins" `Quick
            (test_duplicate_key_last_wins mk);
          Alcotest.test_case "duplicate key within a txn: last wins" `Quick
            (test_duplicate_key_in_txn mk);
          Alcotest.test_case "user abort leaves no trace" `Quick (test_user_abort mk);
          Alcotest.test_case "last_batch_outcomes per txn" `Quick
            (test_last_batch_outcomes mk);
          Alcotest.test_case "time and memory accounting move" `Quick
            (test_time_advances mk);
        ] ))
    engines
