(* The networked front end: wire protocol, stored-procedure registry,
   epoch batcher (admission, deadline/size close, checkpoint-gated
   replies, backpressure, disconnects), served-vs-replayed determinism,
   and a real sockets end-to-end run. *)

module F_wire = Nv_frontend.Wire
module F_proc = Nv_frontend.Proc
module F_batcher = Nv_frontend.Batcher
module F_server = Nv_frontend.Server
module F_loadgen = Nv_frontend.Loadgen
module Engine = Nv_harness.Engine
module Engine_intf = Nvcaracal.Engine_intf
module W = Nv_workloads.Workload
module Rng = Nv_util.Rng

(* ------------------------------------------------------------------ *)
(* Wire protocol                                                       *)

let requests : F_wire.request list =
  [
    F_wire.Hello { client = 7 };
    F_wire.Submit { req = 42; proc = "ycsb.rmw"; args = Bytes.of_string "\x01\x02\x03" };
    F_wire.Submit { req = 0; proc = "p"; args = Bytes.empty };
    F_wire.Bye;
    F_wire.Shutdown;
    F_wire.Stats;
  ]

let responses : F_wire.response list =
  [
    F_wire.Hello_ok;
    F_wire.Result { req = 3; outcome = `Committed };
    F_wire.Result { req = 9; outcome = `Aborted };
    F_wire.Rejected { req = 1; reason = `Overloaded };
    F_wire.Rejected { req = 2; reason = `Unknown_proc };
    F_wire.Rejected { req = F_wire.no_req; reason = `Bad_frame };
    F_wire.Bye_ok { digest = 0x1234_5678_9ABC_DEFL };
    F_wire.Server_error "boom";
    F_wire.Stats_ok { json = {|{"uptime_s":1.5,"admitted":42}|} };
  ]

let decode_stream decode feed_sizes frames =
  let all = Bytes.concat Bytes.empty frames in
  let reader = F_wire.Reader.create () in
  let out = ref [] in
  let off = ref 0 in
  let sizes = ref feed_sizes in
  while !off < Bytes.length all do
    let n =
      match !sizes with
      | [] -> Bytes.length all - !off
      | s :: rest ->
          sizes := rest;
          min s (Bytes.length all - !off)
    in
    F_wire.Reader.feed reader all ~off:!off ~len:n;
    off := !off + n;
    let continue = ref true in
    while !continue do
      match F_wire.Reader.next_payload reader with
      | None -> continue := false
      | Some payload -> out := decode payload :: !out
    done
  done;
  List.rev !out

let test_wire_roundtrip () =
  let got = decode_stream F_wire.decode_request [] (List.map F_wire.encode_request requests) in
  Alcotest.(check int) "request count" (List.length requests) (List.length got);
  List.iter2 (fun a b -> assert (a = b)) requests got;
  let got =
    decode_stream F_wire.decode_response [] (List.map F_wire.encode_response responses)
  in
  Alcotest.(check int) "response count" (List.length responses) (List.length got);
  List.iter2 (fun a b -> assert (a = b)) responses got

(* Byte-at-a-time delivery: the incremental reader reassembles frames
   across arbitrarily fragmented reads. *)
let test_wire_partial () =
  let sizes = List.init 10_000 (fun _ -> 1) in
  let got = decode_stream F_wire.decode_request sizes (List.map F_wire.encode_request requests) in
  assert (got = requests);
  let sizes = List.init 10_000 (fun i -> 1 + (i mod 3)) in
  let got =
    decode_stream F_wire.decode_response sizes (List.map F_wire.encode_response responses)
  in
  assert (got = responses)

let test_wire_errors () =
  let raises f =
    match f () with
    | exception F_wire.Protocol_error _ -> ()
    | _ -> Alcotest.fail "expected Protocol_error"
  in
  (* Unknown tag. *)
  raises (fun () -> F_wire.decode_request (Bytes.of_string "\x7f"));
  raises (fun () -> F_wire.decode_response (Bytes.of_string "\x7f"));
  (* Truncated Submit payload. *)
  raises (fun () -> F_wire.decode_request (Bytes.of_string "\x02\x00\x00"));
  (* Oversized length prefix. *)
  raises (fun () ->
      let r = F_wire.Reader.create () in
      let b = Bytes.create 4 in
      Bytes.set_int32_le b 0 (Int32.of_int (F_wire.max_frame + 1));
      F_wire.Reader.feed r b ~off:0 ~len:4;
      F_wire.Reader.next_payload r);
  (* Zero-length frame. *)
  raises (fun () ->
      let r = F_wire.Reader.create () in
      let b = Bytes.make 4 '\x00' in
      F_wire.Reader.feed r b ~off:0 ~len:4;
      F_wire.Reader.next_payload r);
  (* Truncated Result payload. *)
  raises (fun () -> F_wire.decode_response (Bytes.of_string "\x82\x00\x00"))

(* Seeded fuzz over the reader + decoders: random byte streams, random
   fragmentation, and randomly corrupted valid frames must only ever
   yield decoded messages or [Protocol_error] — never any other
   exception, never a crash. *)
let test_wire_fuzz () =
  let rng = Rng.create 0xF00D in
  let feed_and_drain decode all sizes =
    let reader = F_wire.Reader.create () in
    let off = ref 0 in
    let sizes = ref sizes in
    (try
       while !off < Bytes.length all do
         let n =
           match !sizes with
           | [] -> Bytes.length all - !off
           | s :: rest ->
               sizes := rest;
               min (max 1 s) (Bytes.length all - !off)
         in
         F_wire.Reader.feed reader all ~off:!off ~len:n;
         off := !off + n;
         let continue = ref true in
         while !continue do
           match F_wire.Reader.next_payload reader with
           | None -> continue := false
           | Some payload -> ignore (decode payload)
         done
       done
     with F_wire.Protocol_error _ -> ());
    ()
  in
  for _ = 1 to 200 do
    (* Pure garbage. *)
    let len = 1 + Rng.int rng 256 in
    let garbage = Bytes.init len (fun _ -> Char.chr (Rng.int rng 256)) in
    let frags = List.init 8 (fun _ -> 1 + Rng.int rng 64) in
    feed_and_drain F_wire.decode_request garbage frags;
    feed_and_drain F_wire.decode_response garbage frags;
    (* A valid frame stream with one corrupted byte. *)
    let valid = Bytes.concat Bytes.empty (List.map F_wire.encode_request requests) in
    let corrupted = Bytes.copy valid in
    let pos = Rng.int rng (Bytes.length corrupted) in
    Bytes.set corrupted pos (Char.chr (Rng.int rng 256));
    feed_and_drain F_wire.decode_request corrupted [ 1 + Rng.int rng 16 ]
  done

(* ------------------------------------------------------------------ *)
(* Stored-procedure registry                                           *)

let small_ycsb () =
  Nv_workloads.Ycsb.make
    {
      Nv_workloads.Ycsb.default with
      Nv_workloads.Ycsb.rows = 512;
      value_size = 64;
      update_bytes = 32;
      ops_per_txn = 4;
    }

let small_smallbank () =
  Nv_workloads.Smallbank.make
    { Nv_workloads.Smallbank.default with Nv_workloads.Smallbank.customers = 400; hot_customers = 40 }

let test_proc_registry () =
  List.iter
    (fun (w : W.t) ->
      let reg = F_proc.of_workload w in
      assert (F_proc.names reg <> []);
      assert (not (F_proc.mem reg "no.such.proc"));
      (match F_proc.build reg ~proc:"no.such.proc" ~args:Bytes.empty with
      | Error `Unknown_proc -> ()
      | Ok _ -> Alcotest.fail "unknown proc built");
      (* Every call the workload generates resolves, builds, and logs a
         framed input that rebuilds. *)
      let rng = Rng.create 7 in
      for _ = 1 to 50 do
        let proc, args = w.W.gen_call rng in
        assert (F_proc.mem reg proc);
        match F_proc.build reg ~proc ~args with
        | Error `Unknown_proc -> Alcotest.fail "generated call did not resolve"
        | Ok txn ->
            (* The logged input is the framed call... *)
            assert (txn.Nvcaracal.Txn.input = F_proc.encode_call ~proc ~args);
            (* ...and decodes back to the same (proc, args). *)
            (match F_proc.decode_call txn.Nvcaracal.Txn.input with
            | Some (p, a) -> assert (p = proc && a = args)
            | None -> Alcotest.fail "framed call did not decode");
            (* rebuild (the replay path) accepts it. *)
            let again = F_proc.rebuild reg txn.Nvcaracal.Txn.input in
            assert (again.Nvcaracal.Txn.input = txn.Nvcaracal.Txn.input)
      done)
    [ small_ycsb (); small_smallbank (); Nv_workloads.Tpcc.make Nv_workloads.Tpcc.default ]

(* ------------------------------------------------------------------ *)
(* Session over every engine                                           *)

let tables = [ Nvcaracal.Table.make ~id:0 ~name:"conf" () ]

let caracal_config () =
  Nvcaracal.Config.make ~cores:2 ~row_size:128 ~rows_per_core:4096 ~values_per_core:4096
    ~freelist_capacity:8192 ~log_capacity:(1 lsl 20) ()

let zen_config () =
  {
    Nv_zen.Zen_db.default_config with
    Nv_zen.Zen_db.cores = 2;
    record_size = 64;
    cache_entries = 256;
    slots_per_core = 4096;
  }

let engines : (string * (unit -> Engine_intf.packed)) list =
  [
    ( "nvcaracal",
      fun () ->
        Engine_intf.Packed
          ( (module Nvcaracal.Db.Serial_engine),
            Nvcaracal.Db.Serial_engine.create ~config:(caracal_config ()) ~tables () ) );
    ( "aria",
      fun () ->
        Engine_intf.Packed
          ( (module Nvcaracal.Db.Aria_engine),
            Nvcaracal.Db.Aria_engine.create ~config:(caracal_config ()) ~tables () ) );
    ( "zen",
      fun () ->
        Engine_intf.Packed
          ( (module Nv_zen.Zen_db.Engine),
            Nv_zen.Zen_db.Engine.create ~config:(zen_config ()) ~tables () ) );
  ]

let value i =
  let b = Bytes.create 16 in
  Bytes.set_int64_le b 0 (Int64.of_int i);
  b

let load_engine packed n =
  match packed with
  | Engine_intf.Packed ((module E), db) -> E.bulk_load db (Seq.init n (fun i -> (0, Int64.of_int i, value i)))

let set_txn ~key v =
  Nvcaracal.Txn.make ~input:Bytes.empty
    ~write_set:[ Nvcaracal.Txn.Update { table = 0; key } ]
    (fun ctx -> ctx.Nvcaracal.Txn.Ctx.write ~table:0 ~key v)

let test_session_empty_flush mk () =
  let engine = mk () in
  load_engine engine 16;
  let s = Nvcaracal.Session.of_engine ~engine () in
  assert (Nvcaracal.Session.flush s = None);
  assert (Nvcaracal.Session.pending s = 0)

let test_session_result_gating mk () =
  let engine = mk () in
  load_engine engine 16;
  let s = Nvcaracal.Session.of_engine ~engine ~auto_flush:false () in
  let fired = ref [] in
  Nvcaracal.Session.on_result s (fun h o -> fired := (h, o) :: !fired);
  let h1 = Nvcaracal.Session.submit s (set_txn ~key:1L (value 100)) in
  let h2 = Nvcaracal.Session.submit s (set_txn ~key:2L (value 200)) in
  (* Before the epoch runs: no result, no callback — the checkpoint
     fence gates visibility. *)
  assert (Nvcaracal.Session.result s h1 = None);
  assert (Nvcaracal.Session.poll s h2 = `Pending);
  assert (!fired = []);
  assert (Nvcaracal.Session.pending s = 2);
  ignore (Nvcaracal.Session.flush s);
  assert (Nvcaracal.Session.result s h1 = Some `Committed);
  assert (Nvcaracal.Session.poll s h2 = `Committed);
  assert (List.length !fired = 2)

let test_session_auto_flush_exact mk () =
  let engine = mk () in
  load_engine engine 16;
  let s = Nvcaracal.Session.of_engine ~engine ~epoch_target:3 () in
  let h1 = Nvcaracal.Session.submit s (set_txn ~key:1L (value 1)) in
  let _h2 = Nvcaracal.Session.submit s (set_txn ~key:2L (value 2)) in
  (* Two submissions: below target, still pending. *)
  assert (Nvcaracal.Session.poll s h1 = `Pending);
  assert (Nvcaracal.Session.pending s = 2);
  (* The third reaches the target exactly: the epoch runs inside
     [submit]. *)
  let h3 = Nvcaracal.Session.submit s (set_txn ~key:3L (value 3)) in
  assert (Nvcaracal.Session.pending s = 0);
  assert (Nvcaracal.Session.poll s h1 = `Committed);
  assert (Nvcaracal.Session.poll s h3 = `Committed);
  assert (Nvcaracal.Session.submitted s = 3)

(* ------------------------------------------------------------------ *)
(* Batcher                                                             *)

let spec_serial = Engine.spec (Engine.Caracal Nvcaracal.Config.Nvcaracal)
let spec_aria = Engine.spec Engine.Caracal_aria

let loaded_engine spec (w : W.t) =
  let setup = Engine.setup ~epochs:64 ~epoch_txns:64 () in
  let packed = Engine.instantiate spec setup w in
  (match packed with Engine_intf.Packed ((module E), db) -> E.bulk_load db (w.W.load ()));
  packed

type sim_client = {
  c : F_batcher.client;
  rng : Rng.t;
  results : F_wire.response list ref;
}

let mk_batcher ?cfg spec w =
  let engine = loaded_engine spec w in
  let registry = F_proc.of_workload w in
  F_batcher.create ?cfg ~engine ~registry ~tables:w.W.tables ()

let mk_client ?(seed = 0) b =
  let results = ref [] in
  let c = F_batcher.connect b ~reply:(Some (fun r -> results := r :: !results)) in
  { c; rng = Rng.create seed; results }

let submit_one b (w : W.t) cl ~req =
  let proc, args = w.W.gen_call cl.rng in
  F_batcher.submit b cl.c ~req ~proc ~args

let test_batcher_size_close () =
  let w = small_ycsb () in
  let cfg = F_batcher.config ~batch_target:8 ~deadline_ticks:100 () in
  let b = mk_batcher ~cfg spec_serial w in
  let a = mk_client ~seed:1 b and c = mk_client ~seed:2 b in
  for i = 0 to 3 do
    assert (submit_one b w a ~req:i = `Admitted);
    assert (submit_one b w c ~req:i = `Admitted)
  done;
  (* Replies are withheld until a batch closes and its epoch
     checkpoints: nothing has fired yet even though the target is met. *)
  assert (!(a.results) = [] && !(c.results) = []);
  assert (F_batcher.pending b = 8);
  F_batcher.tick b;
  (* Size target reached: one tick closes and runs exactly one epoch. *)
  Alcotest.(check int) "epochs" 1 (F_batcher.epochs_run b);
  assert (F_batcher.pending b = 0);
  Alcotest.(check int) "client a replies" 4 (List.length !(a.results));
  Alcotest.(check int) "client c replies" 4 (List.length !(c.results));
  (* Round-robin admission in client-id order: a, c, a, c, ... *)
  (match F_batcher.admitted_batches b with
  | [ batch ] -> Alcotest.(check int) "batch size" 8 (Array.length batch)
  | _ -> Alcotest.fail "expected one admitted batch");
  (* Per-client FIFO: requests answered in submission order. *)
  let reqs cl =
    List.rev !(cl.results)
    |> List.map (function F_wire.Result { req; _ } -> req | _ -> Alcotest.fail "not a Result")
  in
  Alcotest.(check (list int)) "fifo a" [ 0; 1; 2; 3 ] (reqs a);
  Alcotest.(check (list int)) "fifo c" [ 0; 1; 2; 3 ] (reqs c)

let test_batcher_deadline_close () =
  let w = small_ycsb () in
  let cfg = F_batcher.config ~batch_target:100 ~deadline_ticks:3 () in
  let b = mk_batcher ~cfg spec_serial w in
  let a = mk_client b in
  for i = 0 to 4 do
    ignore (submit_one b w a ~req:i)
  done;
  (* Under-filled batch: the deadline, not the size target, closes it. *)
  F_batcher.tick b;
  F_batcher.tick b;
  assert (F_batcher.epochs_run b = 0 && !(a.results) = []);
  F_batcher.tick b;
  Alcotest.(check int) "epochs after deadline" 1 (F_batcher.epochs_run b);
  Alcotest.(check int) "replies" 5 (List.length !(a.results))

let test_batcher_overload () =
  let w = small_ycsb () in
  let cfg = F_batcher.config ~batch_target:4 ~deadline_ticks:4 ~max_pending:6 () in
  let b = mk_batcher ~cfg spec_serial w in
  let a = mk_client b in
  for i = 0 to 5 do
    assert (submit_one b w a ~req:i = `Admitted)
  done;
  (* The bound is hit: rejection is explicit, never a silent drop. *)
  (match submit_one b w a ~req:6 with
  | `Rejected `Overloaded -> ()
  | `Admitted | `Rejected _ -> Alcotest.fail "expected `Overloaded");
  (match !(a.results) with
  | [ F_wire.Rejected { req = 6; reason = `Overloaded } ] -> ()
  | _ -> Alcotest.fail "rejection must be delivered on the reply channel");
  Alcotest.(check int) "rejected count" 1 (F_batcher.rejected b);
  (* Draining makes room again. *)
  F_batcher.drain b;
  assert (F_batcher.pending b = 0);
  assert (submit_one b w a ~req:7 = `Admitted);
  (* Unknown procedures are rejected explicitly too. *)
  (match F_batcher.submit b a.c ~req:8 ~proc:"no.such" ~args:Bytes.empty with
  | `Rejected `Unknown_proc -> ()
  | _ -> Alcotest.fail "expected `Unknown_proc")

let test_batcher_disconnect () =
  let w = small_ycsb () in
  let cfg = F_batcher.config ~batch_target:100 ~deadline_ticks:2 () in
  let b = mk_batcher ~cfg spec_serial w in
  let a = mk_client ~seed:1 b and c = mk_client ~seed:2 b in
  for i = 0 to 3 do
    ignore (submit_one b w a ~req:i);
    ignore (submit_one b w c ~req:i)
  done;
  (* Client c vanishes before its epoch ran: its admitted transactions
     still execute (admission is a determinism commitment), only the
     replies are dropped. *)
  F_batcher.disconnect b c.c;
  F_batcher.drain b;
  Alcotest.(check int) "all admitted executed" 8
    (F_batcher.committed b + F_batcher.aborted b);
  Alcotest.(check int) "survivor replied" 4 (List.length !(a.results));
  Alcotest.(check int) "ghost not replied" 0 (List.length !(c.results))

(* Served determinism: a 32-client interleaved run, then an offline
   replay of the very batches the batcher admitted, through a fresh
   engine — committed digests and the raw pmem byte image must be
   identical (the acceptance check of the networked front end). *)
let test_batcher_determinism spec () =
  let w = small_ycsb () in
  let cfg = F_batcher.config ~batch_target:24 ~deadline_ticks:3 ~max_pending:4096 () in
  let b = mk_batcher ~cfg spec w in
  let clients = Array.init 32 (fun i -> mk_client ~seed:(100 + i) b) in
  let driver = Rng.create 9 in
  for round = 0 to 19 do
    Array.iteri
      (fun i cl ->
        let n = Rng.int driver 3 in
        for k = 0 to n - 1 do
          ignore (submit_one b w cl ~req:((round * 10) + k + (i * 1000)))
        done)
      clients;
    F_batcher.tick b
  done;
  F_batcher.drain b;
  let digest_served = F_batcher.state_digest b in
  let batches = F_batcher.admitted_batches b in
  assert (batches <> []);
  (* Offline replay of the same admitted batches. *)
  let replay = loaded_engine spec w in
  let registry = F_proc.of_workload w in
  (match replay with
  | Engine_intf.Packed ((module E), db) ->
      List.iter
        (fun batch ->
          let txns =
            Array.map
              (fun (proc, args) ->
                match F_proc.build registry ~proc ~args with
                | Ok txn -> txn
                | Error `Unknown_proc -> Alcotest.fail "replay: unknown proc")
              batch
          in
          ignore (E.run_batch db txns))
        batches);
  let digest_replayed = Engine.state_digest replay ~tables:w.W.tables in
  Alcotest.(check int64) "served vs replayed digest" digest_served digest_replayed;
  (* Byte-identical persistent images. *)
  let image packed =
    match packed with
    | Engine_intf.Packed ((module E), db) ->
        let p = E.pmem db in
        Nv_nvmm.Pmem.read_bytes p ~off:0 ~len:(Nv_nvmm.Pmem.size p)
  in
  let a = image (F_batcher.engine b) and r = image replay in
  Alcotest.(check int) "pmem sizes" (Bytes.length a) (Bytes.length r);
  Alcotest.(check bool) "pmem byte image identical" true (Bytes.equal a r)

(* ------------------------------------------------------------------ *)
(* Sockets end to end: a real server thread, a real multi-client load
   generator, zero protocol errors, clean shutdown. *)

let test_socket_end_to_end () =
  let w = small_ycsb () in
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "nvdb-test-%d.sock" (Unix.getpid ()))
  in
  if Sys.file_exists path then Sys.remove path;
  let engine = loaded_engine spec_serial w in
  let registry = F_proc.of_workload w in
  let scfg =
    F_server.config
      ~batcher:(F_batcher.config ~batch_target:32 ~deadline_ticks:2 ())
      ~tick_interval_s:0.001 (`Unix path)
  in
  let stats = ref None in
  let th =
    Thread.create
      (fun () -> stats := Some (F_server.serve ~engine ~registry ~tables:w.W.tables scfg))
      ()
  in
  (* Wait for the bind before pointing clients at it. *)
  let waited = ref 0 in
  while (not (Sys.file_exists path)) && !waited < 5000 do
    Thread.delay 0.001;
    incr waited
  done;
  let lcfg =
    F_loadgen.config ~clients:8 ~txns_per_client:40 ~seed:11 ~window:4 ~shutdown:true
      (`Unix path)
  in
  let lstats = F_loadgen.run lcfg w in
  Thread.join th;
  let sstats = match !stats with Some s -> s | None -> Alcotest.fail "server died" in
  Alcotest.(check int) "client protocol errors" 0 lstats.F_loadgen.protocol_errors;
  Alcotest.(check int) "server protocol errors" 0 sstats.F_server.protocol_errors;
  Alcotest.(check int) "all sent" (8 * 40) lstats.F_loadgen.sent;
  Alcotest.(check int) "all answered" (8 * 40)
    (lstats.F_loadgen.committed + lstats.F_loadgen.aborted + lstats.F_loadgen.rejected);
  Alcotest.(check int) "nothing rejected" 0 lstats.F_loadgen.rejected;
  Alcotest.(check int) "server saw all clients" 8 sstats.F_server.clients_served;
  Alcotest.(check int) "server committed everything" lstats.F_loadgen.committed
    sstats.F_server.committed;
  (* Every client got a digest with its goodbye. *)
  assert (List.length lstats.F_loadgen.digests = 8);
  assert (not (Sys.file_exists path))

(* ------------------------------------------------------------------ *)
(* Garbage on the served path: malformed frames are answered with
   Server_error and cost only the offending connection — the server
   keeps serving real clients and still answers Stats. Run against
   every engine behind the seam.                                       *)

let sock_counter = ref 0

let test_socket_garbage_resilience spec () =
  let w = small_ycsb () in
  incr sock_counter;
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "nvdb-fuzz-%d-%d.sock" (Unix.getpid ()) !sock_counter)
  in
  if Sys.file_exists path then Sys.remove path;
  let engine = loaded_engine spec w in
  let registry = F_proc.of_workload w in
  let scfg =
    F_server.config
      ~batcher:(F_batcher.config ~batch_target:32 ~deadline_ticks:2 ())
      ~tick_interval_s:0.001 (`Unix path)
  in
  let stats = ref None in
  let th =
    Thread.create
      (fun () -> stats := Some (F_server.serve ~engine ~registry ~tables:w.W.tables scfg))
      ()
  in
  let waited = ref 0 in
  while (not (Sys.file_exists path)) && !waited < 5000 do
    Thread.delay 0.001;
    incr waited
  done;
  let raw_connect () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_UNIX path);
    fd
  in
  let send_all fd b =
    let off = ref 0 in
    while !off < Bytes.length b do
      off := !off + Unix.write fd b !off (Bytes.length b - !off)
    done
  in
  let frame payload =
    let b = Bytes.create (4 + Bytes.length payload) in
    Bytes.set_int32_le b 0 (Int32.of_int (Bytes.length payload));
    Bytes.blit payload 0 b 4 (Bytes.length payload);
    b
  in
  (* Read every response until the server closes the connection. *)
  let read_responses fd =
    let reader = F_wire.Reader.create () in
    let buf = Bytes.create 4096 in
    let out = ref [] in
    let eof = ref false in
    while not !eof do
      match Unix.select [ fd ] [] [] 5.0 with
      | [], _, _ -> Alcotest.fail "server did not answer within 5s"
      | _ -> (
          match Unix.read fd buf 0 (Bytes.length buf) with
          | 0 -> eof := true
          | n ->
              F_wire.Reader.feed reader buf ~off:0 ~len:n;
              let continue = ref true in
              while !continue do
                match F_wire.Reader.next_payload reader with
                | None -> continue := false
                | Some p -> out := F_wire.decode_response p :: !out
              done)
    done;
    Unix.close fd;
    List.rev !out
  in
  (* 1. Unknown tag: answered Server_error, connection dropped. *)
  let fd = raw_connect () in
  send_all fd (frame (Bytes.of_string "\x7f\x01\x02"));
  (match read_responses fd with
  | [ F_wire.Server_error _ ] -> ()
  | other -> Alcotest.failf "unknown tag: expected one Server_error, got %d responses"
               (List.length other));
  (* 2. Oversized length prefix: dropped (Server_error best-effort). *)
  let fd = raw_connect () in
  let b = Bytes.create 4 in
  Bytes.set_int32_le b 0 (Int32.of_int (F_wire.max_frame + 1));
  send_all fd b;
  (match read_responses fd with
  | [] | [ F_wire.Server_error _ ] -> ()
  | _ -> Alcotest.fail "oversized prefix: unexpected responses");
  (* 3. Half a frame, then an abrupt close: no crash, no stuck state. *)
  let fd = raw_connect () in
  send_all fd (Bytes.sub (frame (Bytes.of_string "\x01\x02\x03\x04")) 0 5);
  Unix.close fd;
  (* 4. Stats needs no Hello and still works after the abuse. *)
  let fd = raw_connect () in
  send_all fd (F_wire.encode_request F_wire.Stats);
  let json =
    let reader = F_wire.Reader.create () in
    let buf = Bytes.create 65536 in
    let rec next () =
      match F_wire.Reader.next_payload reader with
      | Some p -> F_wire.decode_response p
      | None -> (
          match Unix.select [ fd ] [] [] 5.0 with
          | [], _, _ -> Alcotest.fail "no Stats_ok within 5s"
          | _ -> (
              match Unix.read fd buf 0 (Bytes.length buf) with
              | 0 -> Alcotest.fail "connection closed before Stats_ok"
              | n ->
                  F_wire.Reader.feed reader buf ~off:0 ~len:n;
                  next ()))
    in
    match next () with
    | F_wire.Stats_ok { json } -> json
    | _ -> Alcotest.fail "expected Stats_ok"
  in
  Unix.close fd;
  let contains s needle =
    let n = String.length needle and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "stats json has admission counters" true (contains json "\"admitted\"");
  Alcotest.(check bool) "stats json has domain telemetry" true (contains json "\"domains\"");
  (* 5. Real clients still get full service. *)
  let lcfg =
    F_loadgen.config ~clients:4 ~txns_per_client:25 ~seed:3 ~window:2 ~shutdown:true (`Unix path)
  in
  let lstats = F_loadgen.run lcfg w in
  Thread.join th;
  let sstats = match !stats with Some s -> s | None -> Alcotest.fail "server died" in
  Alcotest.(check int) "clients unharmed by the garbage" 0 lstats.F_loadgen.protocol_errors;
  Alcotest.(check int) "all answered" (4 * 25)
    (lstats.F_loadgen.committed + lstats.F_loadgen.aborted + lstats.F_loadgen.rejected);
  Alcotest.(check bool) "garbage was counted" true (sstats.F_server.protocol_errors >= 2);
  Alcotest.(check int) "real clients served" 4 sstats.F_server.clients_served

let suites =
  [
    ( "frontend.wire",
      [
        Alcotest.test_case "round-trips every message" `Quick test_wire_roundtrip;
        Alcotest.test_case "reassembles fragmented reads" `Quick test_wire_partial;
        Alcotest.test_case "malformed input raises Protocol_error" `Quick test_wire_errors;
        Alcotest.test_case "fuzzed frames never crash the decoder" `Quick test_wire_fuzz;
      ] );
    ( "frontend.proc",
      [ Alcotest.test_case "registry round-trips generated calls" `Quick test_proc_registry ] );
    ( "frontend.session",
      List.concat_map
        (fun (name, mk) ->
          [
            Alcotest.test_case (name ^ ": empty flush is None") `Quick
              (test_session_empty_flush mk);
            Alcotest.test_case (name ^ ": results gated on the epoch") `Quick
              (test_session_result_gating mk);
            Alcotest.test_case (name ^ ": auto-flush at exactly epoch_target") `Quick
              (test_session_auto_flush_exact mk);
          ])
        engines );
    ( "frontend.batcher",
      [
        Alcotest.test_case "size target closes the batch" `Quick test_batcher_size_close;
        Alcotest.test_case "deadline closes an under-filled batch" `Quick
          test_batcher_deadline_close;
        Alcotest.test_case "bounded admission rejects explicitly" `Quick test_batcher_overload;
        Alcotest.test_case "disconnect mid-epoch still executes admitted txns" `Quick
          test_batcher_disconnect;
        Alcotest.test_case "served equals replayed (serial, 32 clients)" `Quick
          (test_batcher_determinism spec_serial);
        Alcotest.test_case "served equals replayed (aria, 32 clients)" `Quick
          (test_batcher_determinism spec_aria);
      ] );
    ( "frontend.sockets",
      [
        Alcotest.test_case "serve + loadgen over a unix socket" `Quick test_socket_end_to_end;
        Alcotest.test_case "garbage frames cost only their connection (serial)" `Quick
          (test_socket_garbage_resilience spec_serial);
        Alcotest.test_case "garbage frames cost only their connection (aria)" `Quick
          (test_socket_garbage_resilience spec_aria);
        Alcotest.test_case "garbage frames cost only their connection (zen)" `Quick
          (test_socket_garbage_resilience (Engine.spec Engine.Zen));
      ] );
  ]
