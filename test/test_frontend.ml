(* The networked front end: wire protocol, stored-procedure registry,
   epoch batcher (admission, deadline/size close, checkpoint-gated
   replies, backpressure, disconnects), served-vs-replayed determinism,
   and a real sockets end-to-end run. *)

module F_wire = Nv_frontend.Wire
module F_proc = Nv_frontend.Proc
module F_batcher = Nv_frontend.Batcher
module F_server = Nv_frontend.Server
module F_loadgen = Nv_frontend.Loadgen
module F_journal = Nv_frontend.Journal
module F_restart = Nv_frontend.Restart
module F_shard_set = Nv_frontend.Shard_set
module Engine = Nv_harness.Engine
module Engine_intf = Nvcaracal.Engine_intf
module W = Nv_workloads.Workload
module Rng = Nv_util.Rng

(* ------------------------------------------------------------------ *)
(* Wire protocol                                                       *)

let requests : F_wire.request list =
  [
    F_wire.Hello { client = 7; version = F_wire.protocol_version; resume = false; last_seq = 0 };
    F_wire.Hello { client = 3; version = 2; resume = true; last_seq = 9_000_001 };
    F_wire.Submit { req = 42; proc = "ycsb.rmw"; args = Bytes.of_string "\x01\x02\x03" };
    F_wire.Submit { req = 0; proc = "p"; args = Bytes.empty };
    F_wire.Bye;
    F_wire.Shutdown;
    F_wire.Stats;
  ]

let responses : F_wire.response list =
  [
    F_wire.Hello_ok { version = 2; last_acked = 0 };
    F_wire.Hello_ok { version = 1; last_acked = 123_456 };
    F_wire.Result { req = 3; outcome = `Committed };
    F_wire.Result { req = 9; outcome = `Aborted };
    F_wire.Rejected { req = 1; reason = `Overloaded };
    F_wire.Rejected { req = 2; reason = `Unknown_proc };
    F_wire.Rejected { req = F_wire.no_req; reason = `Bad_frame };
    F_wire.Bye_ok { digest = 0x1234_5678_9ABC_DEFL };
    F_wire.Server_error "boom";
    F_wire.Stats_ok { json = {|{"uptime_s":1.5,"admitted":42}|} };
  ]

let decode_stream decode feed_sizes frames =
  let all = Bytes.concat Bytes.empty frames in
  let reader = F_wire.Reader.create () in
  let out = ref [] in
  let off = ref 0 in
  let sizes = ref feed_sizes in
  while !off < Bytes.length all do
    let n =
      match !sizes with
      | [] -> Bytes.length all - !off
      | s :: rest ->
          sizes := rest;
          min s (Bytes.length all - !off)
    in
    F_wire.Reader.feed reader all ~off:!off ~len:n;
    off := !off + n;
    let continue = ref true in
    while !continue do
      match F_wire.Reader.next_payload reader with
      | None -> continue := false
      | Some payload -> out := decode payload :: !out
    done
  done;
  List.rev !out

let test_wire_roundtrip () =
  let got = decode_stream F_wire.decode_request [] (List.map F_wire.encode_request requests) in
  Alcotest.(check int) "request count" (List.length requests) (List.length got);
  List.iter2 (fun a b -> assert (a = b)) requests got;
  let got =
    decode_stream F_wire.decode_response [] (List.map F_wire.encode_response responses)
  in
  Alcotest.(check int) "response count" (List.length responses) (List.length got);
  List.iter2 (fun a b -> assert (a = b)) responses got

(* Byte-at-a-time delivery: the incremental reader reassembles frames
   across arbitrarily fragmented reads. *)
let test_wire_partial () =
  let sizes = List.init 10_000 (fun _ -> 1) in
  let got = decode_stream F_wire.decode_request sizes (List.map F_wire.encode_request requests) in
  assert (got = requests);
  let sizes = List.init 10_000 (fun i -> 1 + (i mod 3)) in
  let got =
    decode_stream F_wire.decode_response sizes (List.map F_wire.encode_response responses)
  in
  assert (got = responses)

let test_wire_errors () =
  let raises f =
    match f () with
    | exception F_wire.Protocol_error _ -> ()
    | _ -> Alcotest.fail "expected Protocol_error"
  in
  (* Unknown tag. *)
  raises (fun () -> F_wire.decode_request (Bytes.of_string "\x7f"));
  raises (fun () -> F_wire.decode_response (Bytes.of_string "\x7f"));
  (* Truncated Submit payload. *)
  raises (fun () -> F_wire.decode_request (Bytes.of_string "\x02\x00\x00"));
  (* Oversized length prefix. *)
  raises (fun () ->
      let r = F_wire.Reader.create () in
      let b = Bytes.create 4 in
      Bytes.set_int32_le b 0 (Int32.of_int (F_wire.max_frame + 1));
      F_wire.Reader.feed r b ~off:0 ~len:4;
      F_wire.Reader.next_payload r);
  (* Zero-length frame. *)
  raises (fun () ->
      let r = F_wire.Reader.create () in
      let b = Bytes.make 4 '\x00' in
      F_wire.Reader.feed r b ~off:0 ~len:4;
      F_wire.Reader.next_payload r);
  (* Truncated Result payload. *)
  raises (fun () -> F_wire.decode_response (Bytes.of_string "\x82\x00\x00"));
  (* A Hello claiming version 0 is nonsense... *)
  raises (fun () ->
      let frame =
        F_wire.encode_request
          (F_wire.Hello { client = 1; version = 0; resume = false; last_seq = 0 })
      in
      F_wire.decode_request (Bytes.sub frame 4 (Bytes.length frame - 4)));
  (* ...but a version above ours must decode — the server clamps in its
     Hello_ok, so a future client can connect and negotiate down. *)
  (let frame =
     F_wire.encode_request
       (F_wire.Hello
          { client = 1; version = F_wire.protocol_version + 1; resume = true; last_seq = 7 })
   in
   match F_wire.decode_request (Bytes.sub frame 4 (Bytes.length frame - 4)) with
   | F_wire.Hello { client = 1; version = v; resume = true; last_seq = 7 }
     when v = F_wire.protocol_version + 1 ->
       ()
   | _ -> Alcotest.fail "future-version Hello did not decode");
  (* A v2 Hello with a garbage resume flag. *)
  raises (fun () ->
      let frame =
        F_wire.encode_request
          (F_wire.Hello { client = 1; version = 2; resume = true; last_seq = 5 })
      in
      let payload = Bytes.sub frame 4 (Bytes.length frame - 4) in
      Bytes.set_uint8 payload 9 7;
      F_wire.decode_request payload)

(* Version 1 peers stay decodable: a label-only Hello and a bare
   Hello_ok normalise to the v2 record with no session semantics. *)
let test_wire_legacy_v1 () =
  let p = Bytes.create 5 in
  Bytes.set_uint8 p 0 0x01;
  Bytes.set_int32_le p 1 9l;
  (match F_wire.decode_request p with
  | F_wire.Hello { client = 9; version = 1; resume = false; last_seq = 0 } -> ()
  | _ -> Alcotest.fail "legacy Hello did not normalise");
  match F_wire.decode_response (Bytes.make 1 '\x81') with
  | F_wire.Hello_ok { version = 1; last_acked = 0 } -> ()
  | _ -> Alcotest.fail "legacy Hello_ok did not normalise"

(* Seeded fuzz over the reader + decoders: random byte streams, random
   fragmentation, and randomly corrupted valid frames must only ever
   yield decoded messages or [Protocol_error] — never any other
   exception, never a crash. *)
let test_wire_fuzz () =
  let rng = Rng.create 0xF00D in
  let feed_and_drain decode all sizes =
    let reader = F_wire.Reader.create () in
    let off = ref 0 in
    let sizes = ref sizes in
    (try
       while !off < Bytes.length all do
         let n =
           match !sizes with
           | [] -> Bytes.length all - !off
           | s :: rest ->
               sizes := rest;
               min (max 1 s) (Bytes.length all - !off)
         in
         F_wire.Reader.feed reader all ~off:!off ~len:n;
         off := !off + n;
         let continue = ref true in
         while !continue do
           match F_wire.Reader.next_payload reader with
           | None -> continue := false
           | Some payload -> ignore (decode payload)
         done
       done
     with F_wire.Protocol_error _ -> ());
    ()
  in
  for _ = 1 to 200 do
    (* Pure garbage. *)
    let len = 1 + Rng.int rng 256 in
    let garbage = Bytes.init len (fun _ -> Char.chr (Rng.int rng 256)) in
    let frags = List.init 8 (fun _ -> 1 + Rng.int rng 64) in
    feed_and_drain F_wire.decode_request garbage frags;
    feed_and_drain F_wire.decode_response garbage frags;
    (* A valid frame stream with one corrupted byte. *)
    let valid = Bytes.concat Bytes.empty (List.map F_wire.encode_request requests) in
    let corrupted = Bytes.copy valid in
    let pos = Rng.int rng (Bytes.length corrupted) in
    Bytes.set corrupted pos (Char.chr (Rng.int rng 256));
    feed_and_drain F_wire.decode_request corrupted [ 1 + Rng.int rng 16 ]
  done

(* ------------------------------------------------------------------ *)
(* Stored-procedure registry                                           *)

let small_ycsb () =
  Nv_workloads.Ycsb.make
    {
      Nv_workloads.Ycsb.default with
      Nv_workloads.Ycsb.rows = 512;
      value_size = 64;
      update_bytes = 32;
      ops_per_txn = 4;
    }

let small_smallbank () =
  Nv_workloads.Smallbank.make
    { Nv_workloads.Smallbank.default with Nv_workloads.Smallbank.customers = 400; hot_customers = 40 }

let test_proc_registry () =
  List.iter
    (fun (w : W.t) ->
      let reg = F_proc.of_workload w in
      assert (F_proc.names reg <> []);
      assert (not (F_proc.mem reg "no.such.proc"));
      (match F_proc.build reg ~proc:"no.such.proc" ~args:Bytes.empty with
      | Error `Unknown_proc -> ()
      | Ok _ -> Alcotest.fail "unknown proc built");
      (* Every call the workload generates resolves, builds, and logs a
         framed input that rebuilds. *)
      let rng = Rng.create 7 in
      for _ = 1 to 50 do
        let proc, args = w.W.gen_call rng in
        assert (F_proc.mem reg proc);
        match F_proc.build reg ~proc ~args with
        | Error `Unknown_proc -> Alcotest.fail "generated call did not resolve"
        | Ok txn ->
            (* The logged input is the framed call... *)
            assert (txn.Nvcaracal.Txn.input = F_proc.encode_call ~proc ~args);
            (* ...and decodes back to the same (proc, args). *)
            (match F_proc.decode_call txn.Nvcaracal.Txn.input with
            | Some (p, a) -> assert (p = proc && a = args)
            | None -> Alcotest.fail "framed call did not decode");
            (* rebuild (the replay path) accepts it. *)
            let again = F_proc.rebuild reg txn.Nvcaracal.Txn.input in
            assert (again.Nvcaracal.Txn.input = txn.Nvcaracal.Txn.input)
      done)
    [ small_ycsb (); small_smallbank (); Nv_workloads.Tpcc.make Nv_workloads.Tpcc.default ]

(* ------------------------------------------------------------------ *)
(* Session over every engine                                           *)

let tables = [ Nvcaracal.Table.make ~id:0 ~name:"conf" () ]

let caracal_config () =
  Nvcaracal.Config.make ~cores:2 ~row_size:128 ~rows_per_core:4096 ~values_per_core:4096
    ~freelist_capacity:8192 ~log_capacity:(1 lsl 20) ()

let zen_config () =
  {
    Nv_zen.Zen_db.default_config with
    Nv_zen.Zen_db.cores = 2;
    record_size = 64;
    cache_entries = 256;
    slots_per_core = 4096;
  }

let engines : (string * (unit -> Engine_intf.packed)) list =
  [
    ( "nvcaracal",
      fun () ->
        Engine_intf.Packed
          ( (module Nvcaracal.Db.Serial_engine),
            Nvcaracal.Db.Serial_engine.create ~config:(caracal_config ()) ~tables () ) );
    ( "aria",
      fun () ->
        Engine_intf.Packed
          ( (module Nvcaracal.Db.Aria_engine),
            Nvcaracal.Db.Aria_engine.create ~config:(caracal_config ()) ~tables () ) );
    ( "zen",
      fun () ->
        Engine_intf.Packed
          ( (module Nv_zen.Zen_db.Engine),
            Nv_zen.Zen_db.Engine.create ~config:(zen_config ()) ~tables () ) );
  ]

let value i =
  let b = Bytes.create 16 in
  Bytes.set_int64_le b 0 (Int64.of_int i);
  b

let load_engine packed n =
  match packed with
  | Engine_intf.Packed ((module E), db) -> E.bulk_load db (Seq.init n (fun i -> (0, Int64.of_int i, value i)))

let set_txn ~key v =
  Nvcaracal.Txn.make ~input:Bytes.empty
    ~write_set:[ Nvcaracal.Txn.Update { table = 0; key } ]
    (fun ctx -> ctx.Nvcaracal.Txn.Ctx.write ~table:0 ~key v)

let test_session_empty_flush mk () =
  let engine = mk () in
  load_engine engine 16;
  let s = Nvcaracal.Session.of_engine ~engine () in
  assert (Nvcaracal.Session.flush s = None);
  assert (Nvcaracal.Session.pending s = 0)

let test_session_result_gating mk () =
  let engine = mk () in
  load_engine engine 16;
  let s = Nvcaracal.Session.of_engine ~engine ~auto_flush:false () in
  let fired = ref [] in
  Nvcaracal.Session.on_result s (fun h o -> fired := (h, o) :: !fired);
  let h1 = Nvcaracal.Session.submit s (set_txn ~key:1L (value 100)) in
  let h2 = Nvcaracal.Session.submit s (set_txn ~key:2L (value 200)) in
  (* Before the epoch runs: no result, no callback — the checkpoint
     fence gates visibility. *)
  assert (Nvcaracal.Session.result s h1 = None);
  assert (Nvcaracal.Session.poll s h2 = `Pending);
  assert (!fired = []);
  assert (Nvcaracal.Session.pending s = 2);
  ignore (Nvcaracal.Session.flush s);
  assert (Nvcaracal.Session.result s h1 = Some `Committed);
  assert (Nvcaracal.Session.poll s h2 = `Committed);
  assert (List.length !fired = 2)

let test_session_auto_flush_exact mk () =
  let engine = mk () in
  load_engine engine 16;
  let s = Nvcaracal.Session.of_engine ~engine ~epoch_target:3 () in
  let h1 = Nvcaracal.Session.submit s (set_txn ~key:1L (value 1)) in
  let _h2 = Nvcaracal.Session.submit s (set_txn ~key:2L (value 2)) in
  (* Two submissions: below target, still pending. *)
  assert (Nvcaracal.Session.poll s h1 = `Pending);
  assert (Nvcaracal.Session.pending s = 2);
  (* The third reaches the target exactly: the epoch runs inside
     [submit]. *)
  let h3 = Nvcaracal.Session.submit s (set_txn ~key:3L (value 3)) in
  assert (Nvcaracal.Session.pending s = 0);
  assert (Nvcaracal.Session.poll s h1 = `Committed);
  assert (Nvcaracal.Session.poll s h3 = `Committed);
  assert (Nvcaracal.Session.submitted s = 3)

(* ------------------------------------------------------------------ *)
(* Batcher                                                             *)

let spec_serial = Engine.spec (Engine.Caracal Nvcaracal.Config.Nvcaracal)
let spec_aria = Engine.spec Engine.Caracal_aria

let loaded_engine spec (w : W.t) =
  let setup = Engine.setup ~epochs:64 ~epoch_txns:64 () in
  let packed = Engine.instantiate spec setup w in
  (match packed with Engine_intf.Packed ((module E), db) -> E.bulk_load db (w.W.load ()));
  packed

type sim_client = {
  c : F_batcher.client;
  rng : Rng.t;
  results : F_wire.response list ref;
}

(* Single-shard serving is the N=1 case of the shard-set seam. *)
let local_set engine (w : W.t) = F_shard_set.local ~engine ~tables:w.W.tables

let mk_batcher ?cfg spec w =
  let engine = loaded_engine spec w in
  let registry = F_proc.of_workload w in
  F_batcher.create ?cfg ~shards:(local_set engine w) ~registry ~tables:w.W.tables ()

let mk_client ?(seed = 0) b =
  let results = ref [] in
  let c = F_batcher.connect b ~reply:(Some (fun r -> results := r :: !results)) in
  { c; rng = Rng.create seed; results }

let submit_one b (w : W.t) cl ~req =
  let proc, args = w.W.gen_call cl.rng in
  F_batcher.submit b cl.c ~req ~proc ~args

let test_batcher_size_close () =
  let w = small_ycsb () in
  let cfg = F_batcher.config ~batch_target:8 ~deadline_ticks:100 () in
  let b = mk_batcher ~cfg spec_serial w in
  let a = mk_client ~seed:1 b and c = mk_client ~seed:2 b in
  for i = 0 to 3 do
    assert (submit_one b w a ~req:i = `Admitted);
    assert (submit_one b w c ~req:i = `Admitted)
  done;
  (* Replies are withheld until a batch closes and its epoch
     checkpoints: nothing has fired yet even though the target is met. *)
  assert (!(a.results) = [] && !(c.results) = []);
  assert (F_batcher.pending b = 8);
  F_batcher.tick b;
  (* Size target reached: one tick closes and runs exactly one epoch. *)
  Alcotest.(check int) "epochs" 1 (F_batcher.epochs_run b);
  assert (F_batcher.pending b = 0);
  Alcotest.(check int) "client a replies" 4 (List.length !(a.results));
  Alcotest.(check int) "client c replies" 4 (List.length !(c.results));
  (* Round-robin admission in client-id order: a, c, a, c, ... *)
  (match F_batcher.admitted_batches b with
  | [ batch ] -> Alcotest.(check int) "batch size" 8 (Array.length batch)
  | _ -> Alcotest.fail "expected one admitted batch");
  (* Per-client FIFO: requests answered in submission order. *)
  let reqs cl =
    List.rev !(cl.results)
    |> List.map (function F_wire.Result { req; _ } -> req | _ -> Alcotest.fail "not a Result")
  in
  Alcotest.(check (list int)) "fifo a" [ 0; 1; 2; 3 ] (reqs a);
  Alcotest.(check (list int)) "fifo c" [ 0; 1; 2; 3 ] (reqs c)

let test_batcher_deadline_close () =
  let w = small_ycsb () in
  let cfg = F_batcher.config ~batch_target:100 ~deadline_ticks:3 () in
  let b = mk_batcher ~cfg spec_serial w in
  let a = mk_client b in
  for i = 0 to 4 do
    ignore (submit_one b w a ~req:i)
  done;
  (* Under-filled batch: the deadline, not the size target, closes it. *)
  F_batcher.tick b;
  F_batcher.tick b;
  assert (F_batcher.epochs_run b = 0 && !(a.results) = []);
  F_batcher.tick b;
  Alcotest.(check int) "epochs after deadline" 1 (F_batcher.epochs_run b);
  Alcotest.(check int) "replies" 5 (List.length !(a.results))

let test_batcher_overload () =
  let w = small_ycsb () in
  let cfg = F_batcher.config ~batch_target:4 ~deadline_ticks:4 ~max_pending:6 () in
  let b = mk_batcher ~cfg spec_serial w in
  let a = mk_client b in
  for i = 0 to 5 do
    assert (submit_one b w a ~req:i = `Admitted)
  done;
  (* The bound is hit: rejection is explicit, never a silent drop. *)
  (match submit_one b w a ~req:6 with
  | `Rejected `Overloaded -> ()
  | `Admitted | `Rejected _ | `Replayed _ | `Duplicate -> Alcotest.fail "expected `Overloaded");
  (match !(a.results) with
  | [ F_wire.Rejected { req = 6; reason = `Overloaded } ] -> ()
  | _ -> Alcotest.fail "rejection must be delivered on the reply channel");
  Alcotest.(check int) "rejected count" 1 (F_batcher.rejected b);
  (* Draining makes room again. *)
  F_batcher.drain b;
  assert (F_batcher.pending b = 0);
  assert (submit_one b w a ~req:7 = `Admitted);
  (* Unknown procedures are rejected explicitly too. *)
  (match F_batcher.submit b a.c ~req:8 ~proc:"no.such" ~args:Bytes.empty with
  | `Rejected `Unknown_proc -> ()
  | _ -> Alcotest.fail "expected `Unknown_proc")

let test_batcher_disconnect () =
  let w = small_ycsb () in
  let cfg = F_batcher.config ~batch_target:100 ~deadline_ticks:2 () in
  let b = mk_batcher ~cfg spec_serial w in
  let a = mk_client ~seed:1 b and c = mk_client ~seed:2 b in
  for i = 0 to 3 do
    ignore (submit_one b w a ~req:i);
    ignore (submit_one b w c ~req:i)
  done;
  (* Client c vanishes before its epoch ran: its admitted transactions
     still execute (admission is a determinism commitment), only the
     replies are dropped. *)
  F_batcher.disconnect b c.c;
  F_batcher.drain b;
  Alcotest.(check int) "all admitted executed" 8
    (F_batcher.committed b + F_batcher.aborted b);
  Alcotest.(check int) "survivor replied" 4 (List.length !(a.results));
  Alcotest.(check int) "ghost not replied" 0 (List.length !(c.results))

(* Served determinism: a 32-client interleaved run, then an offline
   replay of the very batches the batcher admitted, through a fresh
   engine — committed digests and the raw pmem byte image must be
   identical (the acceptance check of the networked front end). *)
let test_batcher_determinism spec () =
  let w = small_ycsb () in
  let cfg = F_batcher.config ~batch_target:24 ~deadline_ticks:3 ~max_pending:4096 () in
  let b = mk_batcher ~cfg spec w in
  let clients = Array.init 32 (fun i -> mk_client ~seed:(100 + i) b) in
  let driver = Rng.create 9 in
  for round = 0 to 19 do
    Array.iteri
      (fun i cl ->
        let n = Rng.int driver 3 in
        for k = 0 to n - 1 do
          ignore (submit_one b w cl ~req:((round * 10) + k + (i * 1000)))
        done)
      clients;
    F_batcher.tick b
  done;
  F_batcher.drain b;
  let digest_served = F_batcher.state_digest b in
  let batches = F_batcher.admitted_batches b in
  assert (batches <> []);
  (* Offline replay of the same admitted batches. *)
  let replay = loaded_engine spec w in
  let registry = F_proc.of_workload w in
  (match replay with
  | Engine_intf.Packed ((module E), db) ->
      List.iter
        (fun batch ->
          let txns =
            Array.map
              (fun (proc, args) ->
                match F_proc.build registry ~proc ~args with
                | Ok txn -> txn
                | Error `Unknown_proc -> Alcotest.fail "replay: unknown proc")
              batch
          in
          ignore (E.run_batch db txns))
        batches);
  let digest_replayed = Engine.state_digest replay in
  Alcotest.(check int64) "served vs replayed digest" digest_served digest_replayed;
  (* Byte-identical persistent images. *)
  let image packed =
    match packed with
    | Engine_intf.Packed ((module E), db) ->
        let p = E.pmem db in
        Nv_nvmm.Pmem.read_bytes p ~off:0 ~len:(Nv_nvmm.Pmem.size p)
  in
  let a = image (F_batcher.engine b) and r = image replay in
  Alcotest.(check int) "pmem sizes" (Bytes.length a) (Bytes.length r);
  Alcotest.(check bool) "pmem byte image identical" true (Bytes.equal a r)

let pmem_image packed =
  match packed with
  | Engine_intf.Packed ((module E), db) ->
      let p = E.pmem db in
      Nv_nvmm.Pmem.read_bytes p ~off:0 ~len:(Nv_nvmm.Pmem.size p)

(* ------------------------------------------------------------------ *)
(* Crashpoints                                                         *)

let test_crashpoint_parse () =
  let module C = Nv_util.Crashpoint in
  assert (C.parse "mid-epoch:3" = Some ("mid-epoch", 3));
  assert (C.parse "p" = Some ("p", 1));
  assert (C.parse "" = None);
  assert (C.parse ":2" = None);
  assert (C.parse "p:0" = None);
  assert (C.parse "p:-1" = None);
  assert (C.parse "p:x" = None);
  (* The test runner is never armed: hits are free no-ops, suppressed
     or not. *)
  assert (C.armed () = None);
  C.hit "anything";
  C.suppress (fun () -> C.hit "anything")

(* ------------------------------------------------------------------ *)
(* Durable admission journal                                           *)

let tmpfile name =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "nvdb-test-%d-%s" (Unix.getpid ()) name)

let jmeta = "workload=test contention=low engine=serial seed=1"

let mk_entries b n =
  List.init n (fun i ->
      {
        F_journal.j_client = 1 + (i mod 3);
        j_seq = (b * 100) + i;
        j_call = Bytes.of_string (Printf.sprintf "call-%d-%d" b i);
      })

let test_journal_roundtrip () =
  let path = tmpfile "journal-rt" in
  (try Sys.remove path with Sys_error _ -> ());
  let j = F_journal.create ~path ~meta:jmeta () in
  let batches = List.init 5 (fun b -> (b, mk_entries b (1 + b))) in
  List.iter (fun (b, es) -> F_journal.append j ~batch:b ~entries:es) batches;
  (* Destination-not-journey discipline: an append leaves nothing
     unflushed behind — what a kill-9 right now would preserve is
     exactly what was appended. *)
  Alcotest.(check int) "no dirty lines after append" 0
    (Nv_nvmm.Pmem.dirty_line_count (F_journal.pmem j));
  Alcotest.(check int) "record count" 5 (F_journal.record_count j);
  F_journal.close j;
  let o = F_journal.load ~path ~meta:jmeta in
  Alcotest.(check bool) "no torn tail" false o.F_journal.torn_tail;
  assert (o.F_journal.checkpoint = None);
  Alcotest.(check int) "reloaded record count" 5 (List.length o.F_journal.records);
  List.iter2
    (fun (b, es) r ->
      Alcotest.(check int) "batch number" b r.F_journal.r_batch;
      assert (r.F_journal.r_entries = es))
    batches o.F_journal.records;
  F_journal.close o.F_journal.journal;
  (* Replaying against the wrong serving configuration is refused. *)
  (match F_journal.load ~path ~meta:"workload=other contention=low engine=serial seed=1" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "meta mismatch accepted");
  Sys.remove path

(* A torn or bit-rotted tail record is healed: the CRC-valid prefix
   survives, the damage is reported, and the journal appends on. *)
let test_journal_torn_tail () =
  let path = tmpfile "journal-torn" in
  (try Sys.remove path with Sys_error _ -> ());
  let j = F_journal.create ~path ~meta:jmeta () in
  List.iter (fun b -> F_journal.append j ~batch:b ~entries:(mk_entries b 3)) [ 0; 1; 2 ];
  let used = F_journal.used_bytes j in
  F_journal.close j;
  (* Corrupt a byte inside the last record's span — a torn mirror
     write at the moment of the crash. *)
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
  (* [- 16] keeps the flip inside CRC-covered payload bytes, clear of
     the record's final pad-to-8 slack. *)
  ignore (Unix.lseek fd (F_journal.records_offset + used - 16) Unix.SEEK_SET);
  ignore (Unix.write fd (Bytes.make 1 '\xff') 0 1);
  Unix.close fd;
  let o = F_journal.load ~path ~meta:jmeta in
  Alcotest.(check bool) "torn tail reported" true o.F_journal.torn_tail;
  Alcotest.(check int) "prefix survives" 2 (List.length o.F_journal.records);
  List.iteri
    (fun i r -> Alcotest.(check int) "prefix batch" i r.F_journal.r_batch)
    o.F_journal.records;
  F_journal.close o.F_journal.journal;
  Sys.remove path

let test_journal_checkpoint_truncate () =
  let path = tmpfile "journal-ckpt" in
  (try Sys.remove path with Sys_error _ -> ());
  (try Sys.remove (path ^ ".ckpt") with Sys_error _ -> ());
  let j = F_journal.create ~path ~meta:jmeta () in
  List.iter (fun b -> F_journal.append j ~batch:b ~entries:(mk_entries b 2)) [ 0; 1 ];
  let sessions =
    [ { F_journal.ss_client = 5; ss_last_acked = 7; ss_window = [ (6, `Committed); (7, `Aborted) ] } ]
  in
  F_journal.write_checkpoint j ~batches:2 ~sessions ~image:(Bytes.of_string "IMAGE-BYTES");
  F_journal.truncate_to j ~batch:2;
  Alcotest.(check int) "truncated" 0 (F_journal.record_count j);
  F_journal.append j ~batch:2 ~entries:(mk_entries 2 4);
  F_journal.close j;
  let o = F_journal.load ~path ~meta:jmeta in
  (match o.F_journal.checkpoint with
  | None -> Alcotest.fail "checkpoint lost"
  | Some ck ->
      Alcotest.(check int) "covered batches" 2 ck.F_journal.ck_batches;
      assert (ck.F_journal.ck_sessions = sessions);
      assert (Bytes.to_string ck.F_journal.ck_image = "IMAGE-BYTES"));
  (match o.F_journal.records with
  | [ r ] ->
      Alcotest.(check int) "only the uncovered tail remains" 2 r.F_journal.r_batch;
      assert (r.F_journal.r_entries = mk_entries 2 4)
  | rs -> Alcotest.failf "expected 1 surviving record, got %d" (List.length rs));
  F_journal.close o.F_journal.journal;
  Sys.remove path;
  Sys.remove (path ^ ".ckpt")

(* ------------------------------------------------------------------ *)
(* Exactly-once sessions                                               *)

let test_batcher_session_dedup () =
  let w = small_ycsb () in
  let cfg = F_batcher.config ~batch_target:4 ~deadline_ticks:2 () in
  let b = mk_batcher ~cfg spec_serial w in
  let results = ref [] in
  let c = F_batcher.connect b ~reply:(Some (fun r -> results := r :: !results)) in
  let id = F_batcher.client_id c in
  let rng = Rng.create 5 in
  let proc, args = w.W.gen_call rng in
  assert (F_batcher.submit b c ~req:1 ~proc ~args = `Admitted);
  (* Retried while still in flight: swallowed — the original reply will
     answer it, nothing runs twice. *)
  assert (F_batcher.submit b c ~req:1 ~proc ~args = `Duplicate);
  F_batcher.drain b;
  let outcome1 =
    match !results with
    | [ F_wire.Result { req = 1; outcome } ] -> outcome
    | rs -> Alcotest.failf "expected exactly one Result, got %d replies" (List.length rs)
  in
  Alcotest.(check int) "one admission" 1 (F_batcher.admitted b);
  (* Retried after the answer: replayed from the dedup window with the
     original outcome, not re-executed. *)
  (match F_batcher.submit b c ~req:1 ~proc ~args with
  | `Replayed o -> assert (o = outcome1)
  | _ -> Alcotest.fail "expected `Replayed");
  Alcotest.(check int) "replayed reply resent" 2 (List.length !results);
  Alcotest.(check int) "replayed counter" 1 (F_batcher.replayed_replies b);
  Alcotest.(check int) "still one admission" 1 (F_batcher.admitted b);
  Alcotest.(check int) "last acked" 1 (F_batcher.last_acked c);
  (* Resume: same session, window intact, reply channel swapped. *)
  let results2 = ref [] in
  let c2 = F_batcher.connect b ~id ~resume:true ~reply:(Some (fun r -> results2 := r :: !results2)) in
  Alcotest.(check int) "resumed last_acked" 1 (F_batcher.last_acked c2);
  (match F_batcher.submit b c2 ~req:1 ~proc ~args with
  | `Replayed o -> assert (o = outcome1)
  | _ -> Alcotest.fail "resume lost the dedup window");
  Alcotest.(check int) "replay lands on the new channel" 1 (List.length !results2);
  (* Non-resume reconnect resets the session: the window is gone and
     the same seq executes anew. *)
  let c3 = F_batcher.connect b ~id ~reply:(Some ignore) in
  Alcotest.(check int) "reset last_acked" 0 (F_batcher.last_acked c3);
  assert (F_batcher.submit b c3 ~req:1 ~proc ~args = `Admitted);
  F_batcher.drain b;
  Alcotest.(check int) "re-executed after reset" 2 (F_batcher.admitted b);
  Alcotest.(check int) "one session throughout" 1 (F_batcher.sessions b)

(* Last-Hello-wins takeover: when a second connection resumes a session,
   the first connection's late disconnect carries a stale owner token
   and must not sever the new reply channel; and a submit on a severed
   session admits without raising (the outcome lands in the dedup
   window for a later resume). *)
let test_batcher_takeover () =
  let w = small_ycsb () in
  let cfg = F_batcher.config ~batch_target:4 ~deadline_ticks:2 () in
  let b = mk_batcher ~cfg spec_serial w in
  let r1 = ref [] and r2 = ref [] in
  let c1 = F_batcher.connect b ~reply:(Some (fun r -> r1 := r :: !r1)) in
  let id = F_batcher.client_id c1 in
  let tok1 = F_batcher.owner_token c1 in
  let rng = Rng.create 3 in
  let proc, args = w.W.gen_call rng in
  let c2 = F_batcher.connect b ~id ~resume:true ~reply:(Some (fun r -> r2 := r :: !r2)) in
  assert (F_batcher.owner_token c2 <> tok1);
  (* The stale connection closes after the takeover: token mismatch,
     the live channel survives. *)
  F_batcher.disconnect ~token:tok1 b c1;
  assert (F_batcher.submit b c2 ~req:1 ~proc ~args = `Admitted);
  F_batcher.drain b;
  Alcotest.(check int) "live channel answered" 1 (List.length !r2);
  Alcotest.(check int) "stale channel silent" 0 (List.length !r1);
  (* A current-token disconnect does sever; a ghost submit on the
     severed session still admits — never raises — and its outcome is
     replayable after a resume. *)
  F_batcher.disconnect ~token:(F_batcher.owner_token c2) b c2;
  assert (F_batcher.submit b c2 ~req:2 ~proc ~args = `Admitted);
  F_batcher.drain b;
  Alcotest.(check int) "no reply while severed" 1 (List.length !r2);
  Alcotest.(check int) "ghost executed anyway" 2
    (F_batcher.committed b + F_batcher.aborted b);
  let r3 = ref [] in
  let c3 = F_batcher.connect b ~id ~resume:true ~reply:(Some (fun r -> r3 := r :: !r3)) in
  (match F_batcher.submit b c3 ~req:2 ~proc ~args with
  | `Replayed _ -> ()
  | _ -> Alcotest.fail "ghost outcome must replay after resume");
  Alcotest.(check int) "replay lands on the resumed channel" 1 (List.length !r3)

(* try_replay is the draining server's probe: answer acked retries from
   the window, leave in-flight seqs alone, admit nothing. *)
let test_batcher_try_replay () =
  let w = small_ycsb () in
  let cfg = F_batcher.config ~batch_target:4 ~deadline_ticks:2 () in
  let b = mk_batcher ~cfg spec_serial w in
  let results = ref [] in
  let c = F_batcher.connect b ~reply:(Some (fun r -> results := r :: !results)) in
  let rng = Rng.create 7 in
  let proc, args = w.W.gen_call rng in
  assert (F_batcher.submit b c ~req:1 ~proc ~args = `Admitted);
  assert (F_batcher.try_replay b c ~req:1 = `Inflight);
  F_batcher.drain b;
  let outcome =
    match !results with
    | [ F_wire.Result { req = 1; outcome } ] -> outcome
    | _ -> Alcotest.fail "expected one Result"
  in
  (match F_batcher.try_replay b c ~req:1 with
  | `Replayed o -> assert (o = outcome)
  | _ -> Alcotest.fail "expected `Replayed");
  Alcotest.(check int) "replay re-sent" 2 (List.length !results);
  Alcotest.(check int) "replayed counter" 1 (F_batcher.replayed_replies b);
  assert (F_batcher.try_replay b c ~req:9 = `New);
  Alcotest.(check int) "probe admits nothing" 1 (F_batcher.admitted b)

(* ------------------------------------------------------------------ *)
(* Crash-replay determinism: a journaled run, then a fresh engine fed
   the journal through Batcher.recover — digests, counters and the raw
   pmem byte image must all match (what --recover relies on).          *)

let test_batcher_journal_replay spec () =
  let w = small_ycsb () in
  let cfg = F_batcher.config ~batch_target:16 ~deadline_ticks:2 ~max_pending:4096 () in
  let registry = F_proc.of_workload w in
  let j = F_journal.create ~meta:jmeta () in
  let b =
    F_batcher.create ~cfg ~journal:j
      ~shards:(local_set (loaded_engine spec w) w)
      ~registry ~tables:w.W.tables ()
  in
  let clients = Array.init 8 (fun i -> mk_client ~seed:(40 + i) b) in
  for round = 0 to 11 do
    Array.iteri (fun i cl -> ignore (submit_one b w cl ~req:(round + (i * 1000)))) clients;
    F_batcher.tick b
  done;
  F_batcher.drain b;
  let records, torn = F_journal.rescan j in
  assert (not torn);
  assert (records <> []);
  let b2 =
    F_batcher.create ~cfg ~shards:(local_set (loaded_engine spec w) w) ~registry
      ~tables:w.W.tables ()
  in
  F_batcher.recover b2 ~records ~sessions:[] ~batches_done:0;
  Alcotest.(check int64) "digest after replay" (F_batcher.state_digest b)
    (F_batcher.state_digest b2);
  Alcotest.(check int) "batches after replay" (F_batcher.batches_run b)
    (F_batcher.batches_run b2);
  Alcotest.(check int) "admissions after replay" (F_batcher.admitted b) (F_batcher.admitted b2);
  Alcotest.(check bool) "pmem image identical after replay" true
    (Bytes.equal (pmem_image (F_batcher.engine b)) (pmem_image (F_batcher.engine b2)))

(* Checkpoint + truncate mid-run, keep going, "crash", then recover
   from the file: engine image from the checkpoint, tail from the
   journal — the composition must equal the uncrashed original.       *)
let test_restart_checkpoint_twin () =
  let w = small_ycsb () in
  let spec = { spec_serial with Engine.crash_safe = true } in
  let setup = Engine.setup ~epochs:64 ~epoch_txns:64 () in
  let registry = F_proc.of_workload w in
  let path = tmpfile "journal-twin" in
  (try Sys.remove path with Sys_error _ -> ());
  (try Sys.remove (path ^ ".ckpt") with Sys_error _ -> ());
  let mk_eng () =
    let packed = Engine.instantiate spec setup w in
    (match packed with Engine_intf.Packed ((module E), db) -> E.bulk_load db (w.W.load ()));
    packed
  in
  let cfg = F_batcher.config ~batch_target:8 ~deadline_ticks:2 ~max_pending:4096 () in
  let j = F_journal.create ~path ~meta:jmeta () in
  let b =
    F_batcher.create ~cfg ~journal:j ~shards:(local_set (mk_eng ()) w) ~registry
      ~tables:w.W.tables ()
  in
  let clients = Array.init 4 (fun i -> mk_client ~seed:(60 + i) b) in
  let round b clients r =
    Array.iteri (fun i cl -> ignore (submit_one b w cl ~req:(r + (i * 1000)))) clients;
    F_batcher.tick b
  in
  for r = 0 to 5 do
    round b clients r
  done;
  F_batcher.flush b;
  Alcotest.(check bool) "checkpoint written" true (F_batcher.checkpoint_now b);
  for r = 6 to 11 do
    round b clients r
  done;
  F_batcher.drain b;
  let digest_a = F_batcher.state_digest b in
  let image_a = pmem_image (F_batcher.engine b) in
  (* The "crash": reopen the durable artifacts, restore, replay. *)
  let o = F_journal.load ~path ~meta:jmeta in
  let boot = F_restart.boot spec setup w ~registry o in
  Alcotest.(check bool) "restored from the checkpoint" true boot.F_restart.from_checkpoint;
  assert (boot.F_restart.batches_done > 0);
  let b2 =
    F_batcher.create ~cfg ~shards:(local_set boot.F_restart.engine w) ~registry
      ~tables:w.W.tables ()
  in
  F_batcher.recover b2 ~records:o.F_journal.records ~sessions:boot.F_restart.sessions
    ~batches_done:boot.F_restart.batches_done;
  Alcotest.(check int64) "twin digest" digest_a (F_batcher.state_digest b2);
  Alcotest.(check bool) "twin pmem image" true
    (Bytes.equal image_a (pmem_image (F_batcher.engine b2)));
  Alcotest.(check int) "twin batch count" (F_batcher.batches_run b) (F_batcher.batches_run b2);
  F_journal.close o.F_journal.journal;
  F_journal.close j;
  Sys.remove path;
  Sys.remove (path ^ ".ckpt")

(* ------------------------------------------------------------------ *)
(* Aria deferred carryover under sustained overload: conflicts defer,
   overload rejects, and through all of it every admitted call is
   answered exactly once and the carryover fully drains.               *)

let test_batcher_aria_overload_carryover () =
  let w =
    Nv_workloads.Ycsb.(
      make
        (with_contention `High
           { default with rows = 256; value_size = 64; update_bytes = 32; hot_rows = 8;
             ops_per_txn = 4 }))
  in
  let cfg = F_batcher.config ~batch_target:16 ~deadline_ticks:2 ~max_pending:32 () in
  let b = mk_batcher ~cfg spec_aria w in
  let clients = Array.init 8 (fun i -> mk_client ~seed:(80 + i) b) in
  let rejected = ref 0 in
  for round = 0 to 39 do
    Array.iteri
      (fun i cl ->
        for k = 0 to 2 do
          match submit_one b w cl ~req:((round * 3) + k + (i * 10_000)) with
          | `Admitted -> ()
          | `Rejected `Overloaded -> incr rejected
          | `Rejected `Unknown_proc | `Replayed _ | `Duplicate ->
              Alcotest.fail "unexpected submit result"
        done)
      clients;
    F_batcher.tick b
  done;
  Alcotest.(check bool) "conflicts actually deferred" true (F_batcher.deferred_total b > 0);
  Alcotest.(check bool) "overload actually rejected" true (!rejected > 0);
  F_batcher.drain b;
  Alcotest.(check int) "carryover fully drained" 0 (F_batcher.carryover_len b);
  Alcotest.(check int) "every admission answered"
    (F_batcher.admitted b)
    (F_batcher.committed b + F_batcher.aborted b);
  (* Exactly one answer per admitted request: deferral retries must not
     leak duplicate replies. *)
  Array.iter
    (fun cl ->
      let reqs =
        List.filter_map
          (function F_wire.Result { req; _ } -> Some req | _ -> None)
          !(cl.results)
      in
      Alcotest.(check int) "no duplicate replies" (List.length reqs)
        (List.length (List.sort_uniq compare reqs)))
    clients

(* ------------------------------------------------------------------ *)
(* Sockets end to end: a real server thread, a real multi-client load
   generator, zero protocol errors, clean shutdown. *)

let test_socket_end_to_end () =
  let w = small_ycsb () in
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "nvdb-test-%d.sock" (Unix.getpid ()))
  in
  if Sys.file_exists path then Sys.remove path;
  let engine = loaded_engine spec_serial w in
  let registry = F_proc.of_workload w in
  let scfg =
    F_server.config
      ~batcher:(F_batcher.config ~batch_target:32 ~deadline_ticks:2 ())
      ~tick_interval_s:0.001 (`Unix path)
  in
  let stats = ref None in
  let th =
    Thread.create
      (fun () ->
        stats :=
          Some (F_server.serve ~shards:(local_set engine w) ~registry ~tables:w.W.tables scfg))
      ()
  in
  (* Wait for the bind before pointing clients at it. *)
  let waited = ref 0 in
  while (not (Sys.file_exists path)) && !waited < 5000 do
    Thread.delay 0.001;
    incr waited
  done;
  let lcfg =
    F_loadgen.config ~clients:8 ~txns_per_client:40 ~seed:11 ~window:4 ~shutdown:true
      (`Unix path)
  in
  let lstats = F_loadgen.run lcfg w in
  Thread.join th;
  let sstats = match !stats with Some s -> s | None -> Alcotest.fail "server died" in
  Alcotest.(check int) "client protocol errors" 0 lstats.F_loadgen.protocol_errors;
  Alcotest.(check int) "server protocol errors" 0 sstats.F_server.protocol_errors;
  Alcotest.(check int) "all sent" (8 * 40) lstats.F_loadgen.sent;
  Alcotest.(check int) "all answered" (8 * 40)
    (lstats.F_loadgen.committed + lstats.F_loadgen.aborted + lstats.F_loadgen.rejected);
  Alcotest.(check int) "nothing rejected" 0 lstats.F_loadgen.rejected;
  Alcotest.(check int) "server saw all clients" 8 sstats.F_server.clients_served;
  Alcotest.(check int) "server committed everything" lstats.F_loadgen.committed
    sstats.F_server.committed;
  (* Every client got a digest with its goodbye. *)
  assert (List.length lstats.F_loadgen.digests = 8);
  assert (not (Sys.file_exists path))

(* should_stop (what SIGTERM/SIGINT toggle in nvdb serve): the select
   loop notices, drains, answers everyone and exits cleanly. *)
let test_server_should_stop () =
  let w = small_ycsb () in
  let path = tmpfile "stop.sock" in
  if Sys.file_exists path then Sys.remove path;
  let engine = loaded_engine spec_serial w in
  let registry = F_proc.of_workload w in
  let scfg =
    F_server.config
      ~batcher:(F_batcher.config ~batch_target:16 ~deadline_ticks:2 ())
      ~tick_interval_s:0.001 (`Unix path)
  in
  let stop = ref false in
  let stats = ref None in
  let th =
    Thread.create
      (fun () ->
        stats :=
          Some
            (F_server.serve
               ~should_stop:(fun () -> !stop)
               ~shards:(local_set engine w) ~registry ~tables:w.W.tables scfg))
      ()
  in
  let waited = ref 0 in
  while (not (Sys.file_exists path)) && !waited < 5000 do
    Thread.delay 0.001;
    incr waited
  done;
  let lcfg = F_loadgen.config ~clients:4 ~txns_per_client:20 ~seed:5 ~window:2 (`Unix path) in
  let lstats = F_loadgen.run lcfg w in
  stop := true;
  Thread.join th;
  let sstats = match !stats with Some s -> s | None -> Alcotest.fail "server died" in
  Alcotest.(check int) "client protocol errors" 0 lstats.F_loadgen.protocol_errors;
  Alcotest.(check int) "server protocol errors" 0 sstats.F_server.protocol_errors;
  Alcotest.(check int) "all answered" (4 * 20)
    (lstats.F_loadgen.committed + lstats.F_loadgen.aborted + lstats.F_loadgen.rejected);
  Alcotest.(check int) "server agrees on commits" lstats.F_loadgen.committed
    sstats.F_server.committed;
  Alcotest.(check bool) "socket removed on exit" false (Sys.file_exists path)

(* ------------------------------------------------------------------ *)
(* Garbage on the served path: malformed frames are answered with
   Server_error and cost only the offending connection — the server
   keeps serving real clients and still answers Stats. Run against
   every engine behind the seam.                                       *)

let sock_counter = ref 0

let test_socket_garbage_resilience spec () =
  let w = small_ycsb () in
  incr sock_counter;
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "nvdb-fuzz-%d-%d.sock" (Unix.getpid ()) !sock_counter)
  in
  if Sys.file_exists path then Sys.remove path;
  let engine = loaded_engine spec w in
  let registry = F_proc.of_workload w in
  let scfg =
    F_server.config
      ~batcher:(F_batcher.config ~batch_target:32 ~deadline_ticks:2 ())
      ~tick_interval_s:0.001 (`Unix path)
  in
  let stats = ref None in
  let th =
    Thread.create
      (fun () ->
        stats :=
          Some (F_server.serve ~shards:(local_set engine w) ~registry ~tables:w.W.tables scfg))
      ()
  in
  let waited = ref 0 in
  while (not (Sys.file_exists path)) && !waited < 5000 do
    Thread.delay 0.001;
    incr waited
  done;
  let raw_connect () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_UNIX path);
    fd
  in
  let send_all fd b =
    let off = ref 0 in
    while !off < Bytes.length b do
      off := !off + Unix.write fd b !off (Bytes.length b - !off)
    done
  in
  let frame payload =
    let b = Bytes.create (4 + Bytes.length payload) in
    Bytes.set_int32_le b 0 (Int32.of_int (Bytes.length payload));
    Bytes.blit payload 0 b 4 (Bytes.length payload);
    b
  in
  (* Read every response until the server closes the connection. *)
  let read_responses fd =
    let reader = F_wire.Reader.create () in
    let buf = Bytes.create 4096 in
    let out = ref [] in
    let eof = ref false in
    while not !eof do
      match Unix.select [ fd ] [] [] 5.0 with
      | [], _, _ -> Alcotest.fail "server did not answer within 5s"
      | _ -> (
          match Unix.read fd buf 0 (Bytes.length buf) with
          | 0 -> eof := true
          | n ->
              F_wire.Reader.feed reader buf ~off:0 ~len:n;
              let continue = ref true in
              while !continue do
                match F_wire.Reader.next_payload reader with
                | None -> continue := false
                | Some p -> out := F_wire.decode_response p :: !out
              done)
    done;
    Unix.close fd;
    List.rev !out
  in
  (* 1. Unknown tag: answered Server_error, connection dropped. *)
  let fd = raw_connect () in
  send_all fd (frame (Bytes.of_string "\x7f\x01\x02"));
  (match read_responses fd with
  | [ F_wire.Server_error _ ] -> ()
  | other -> Alcotest.failf "unknown tag: expected one Server_error, got %d responses"
               (List.length other));
  (* 2. Oversized length prefix: dropped (Server_error best-effort). *)
  let fd = raw_connect () in
  let b = Bytes.create 4 in
  Bytes.set_int32_le b 0 (Int32.of_int (F_wire.max_frame + 1));
  send_all fd b;
  (match read_responses fd with
  | [] | [ F_wire.Server_error _ ] -> ()
  | _ -> Alcotest.fail "oversized prefix: unexpected responses");
  (* 3. Half a frame, then an abrupt close: no crash, no stuck state. *)
  let fd = raw_connect () in
  send_all fd (Bytes.sub (frame (Bytes.of_string "\x01\x02\x03\x04")) 0 5);
  Unix.close fd;
  (* 4. Stats needs no Hello and still works after the abuse. *)
  let fd = raw_connect () in
  send_all fd (F_wire.encode_request F_wire.Stats);
  let json =
    let reader = F_wire.Reader.create () in
    let buf = Bytes.create 65536 in
    let rec next () =
      match F_wire.Reader.next_payload reader with
      | Some p -> F_wire.decode_response p
      | None -> (
          match Unix.select [ fd ] [] [] 5.0 with
          | [], _, _ -> Alcotest.fail "no Stats_ok within 5s"
          | _ -> (
              match Unix.read fd buf 0 (Bytes.length buf) with
              | 0 -> Alcotest.fail "connection closed before Stats_ok"
              | n ->
                  F_wire.Reader.feed reader buf ~off:0 ~len:n;
                  next ()))
    in
    match next () with
    | F_wire.Stats_ok { json } -> json
    | _ -> Alcotest.fail "expected Stats_ok"
  in
  Unix.close fd;
  let contains s needle =
    let n = String.length needle and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "stats json has admission counters" true (contains json "\"admitted\"");
  Alcotest.(check bool) "stats json has domain telemetry" true (contains json "\"domains\"");
  (* 5. Real clients still get full service. *)
  let lcfg =
    F_loadgen.config ~clients:4 ~txns_per_client:25 ~seed:3 ~window:2 ~shutdown:true (`Unix path)
  in
  let lstats = F_loadgen.run lcfg w in
  Thread.join th;
  let sstats = match !stats with Some s -> s | None -> Alcotest.fail "server died" in
  Alcotest.(check int) "clients unharmed by the garbage" 0 lstats.F_loadgen.protocol_errors;
  Alcotest.(check int) "all answered" (4 * 25)
    (lstats.F_loadgen.committed + lstats.F_loadgen.aborted + lstats.F_loadgen.rejected);
  Alcotest.(check bool) "garbage was counted" true (sstats.F_server.protocol_errors >= 2);
  Alcotest.(check int) "real clients served" 4 sstats.F_server.clients_served

(* ------------------------------------------------------------------ *)
(* Raw-socket helpers for the reconnect/shutdown regression tests.     *)

let raw_dial path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  fd

let raw_send fd b =
  let off = ref 0 in
  while !off < Bytes.length b do
    off := !off + Unix.write fd b !off (Bytes.length b - !off)
  done

let raw_recv_one fd reader =
  let buf = Bytes.create 65536 in
  let rec next () =
    match F_wire.Reader.next_payload reader with
    | Some p -> F_wire.decode_response p
    | None -> (
        match Unix.select [ fd ] [] [] 5.0 with
        | [], _, _ -> Alcotest.fail "no response within 5s"
        | _ -> (
            match Unix.read fd buf 0 (Bytes.length buf) with
            | 0 -> Alcotest.fail "connection closed early"
            | n ->
                F_wire.Reader.feed reader buf ~off:0 ~len:n;
                next ()))
  in
  next ()

let raw_recv_until_eof fd reader =
  let buf = Bytes.create 65536 in
  let out = ref [] in
  let eof = ref false in
  while not !eof do
    match Unix.select [ fd ] [] [] 5.0 with
    | [], _, _ -> Alcotest.fail "server did not close within 5s"
    | _ -> (
        match Unix.read fd buf 0 (Bytes.length buf) with
        | 0 | (exception Unix.Unix_error (Unix.ECONNRESET, _, _)) -> eof := true
        | n ->
            F_wire.Reader.feed reader buf ~off:0 ~len:n;
            let continue = ref true in
            while !continue do
              match F_wire.Reader.next_payload reader with
              | None -> continue := false
              | Some p -> out := F_wire.decode_response p :: !out
            done)
  done;
  Unix.close fd;
  List.rev !out

let start_unix_server ?should_stop w path =
  if Sys.file_exists path then Sys.remove path;
  let engine = loaded_engine spec_serial w in
  let registry = F_proc.of_workload w in
  let scfg =
    F_server.config
      ~batcher:(F_batcher.config ~batch_target:8 ~deadline_ticks:2 ())
      ~tick_interval_s:0.001 (`Unix path)
  in
  let stats = ref None in
  let th =
    Thread.create
      (fun () ->
        stats :=
          Some
            (F_server.serve ?should_stop ~shards:(local_set engine w) ~registry
               ~tables:w.W.tables scfg))
      ()
  in
  let waited = ref 0 in
  while (not (Sys.file_exists path)) && !waited < 5000 do
    Thread.delay 0.001;
    incr waited
  done;
  (th, stats)

(* Session takeover at the socket level: two connections share one
   session id (last Hello wins), then the stale connection closes. The
   live connection's next Submit must be answered normally — the
   regression was the stale close severing the taken-over session and
   the Submit raising Invalid_argument out of the event loop, killing
   the server. The second Hello also claims a future protocol version:
   it must be clamped in Hello_ok, not rejected at decode. *)
let test_server_session_takeover () =
  let w = small_ycsb () in
  let path = tmpfile "takeover.sock" in
  let th, stats = start_unix_server w path in
  let rng = Rng.create 21 in
  let proc, args = w.W.gen_call rng in
  let fd1 = raw_dial path in
  let rd1 = F_wire.Reader.create () in
  raw_send fd1
    (F_wire.encode_request
       (F_wire.Hello { client = 42; version = 2; resume = false; last_seq = 0 }));
  (match raw_recv_one fd1 rd1 with
  | F_wire.Hello_ok _ -> ()
  | _ -> Alcotest.fail "expected Hello_ok on the first connection");
  (* The reconnect, from the client's view: same session id, resume set,
     and a newer protocol version than the server speaks. *)
  let fd2 = raw_dial path in
  let rd2 = F_wire.Reader.create () in
  raw_send fd2
    (F_wire.encode_request
       (F_wire.Hello
          { client = 42; version = F_wire.protocol_version + 1; resume = true; last_seq = 0 }));
  (match raw_recv_one fd2 rd2 with
  | F_wire.Hello_ok { version; _ } ->
      Alcotest.(check int) "negotiated down to ours" F_wire.protocol_version version
  | _ -> Alcotest.fail "expected Hello_ok on the takeover connection");
  (* The stale connection's EOF reaches the server before the live
     connection's Submit. *)
  Unix.close fd1;
  Thread.delay 0.05;
  raw_send fd2 (F_wire.encode_request (F_wire.Submit { req = 1; proc; args }));
  (match raw_recv_one fd2 rd2 with
  | F_wire.Result { req = 1; _ } -> ()
  | _ -> Alcotest.fail "live connection must be answered after the stale close");
  raw_send fd2 (F_wire.encode_request F_wire.Bye);
  (match raw_recv_one fd2 rd2 with
  | F_wire.Bye_ok _ -> ()
  | _ -> Alcotest.fail "expected Bye_ok");
  raw_send fd2 (F_wire.encode_request F_wire.Shutdown);
  ignore (raw_recv_until_eof fd2 rd2);
  Thread.join th;
  let sstats = match !stats with Some s -> s | None -> Alcotest.fail "server died" in
  Alcotest.(check int) "no protocol errors" 0 sstats.F_server.protocol_errors;
  Alcotest.(check int) "one execution" 1
    (sstats.F_server.committed + sstats.F_server.aborted)

(* Exactly-once across graceful shutdown: a retransmit of an already
   acknowledged seq racing the stop signal must never be answered
   Rejected — whichever path handles it (live replay or the draining
   sweep), the dedup window answers with the original outcome; at worst
   the shutdown closes the connection unanswered and the client retries
   against the restarted server. *)
let test_server_drain_retransmit () =
  let w = small_ycsb () in
  let path = tmpfile "drain-retx.sock" in
  let stop = ref false in
  let th, stats = start_unix_server ~should_stop:(fun () -> !stop) w path in
  let rng = Rng.create 23 in
  let proc, args = w.W.gen_call rng in
  let fd = raw_dial path in
  let rd = F_wire.Reader.create () in
  raw_send fd
    (F_wire.encode_request
       (F_wire.Hello { client = 9; version = 2; resume = false; last_seq = 0 }));
  (match raw_recv_one fd rd with
  | F_wire.Hello_ok _ -> ()
  | _ -> Alcotest.fail "expected Hello_ok");
  raw_send fd (F_wire.encode_request (F_wire.Submit { req = 1; proc; args }));
  let outcome =
    match raw_recv_one fd rd with
    | F_wire.Result { req = 1; outcome } -> outcome
    | _ -> Alcotest.fail "expected the original Result"
  in
  (* Race the retransmit against the stop signal. *)
  raw_send fd (F_wire.encode_request (F_wire.Submit { req = 1; proc; args }));
  stop := true;
  let late = raw_recv_until_eof fd rd in
  Thread.join th;
  List.iter
    (function
      | F_wire.Result { req = 1; outcome = o } ->
          if o <> outcome then Alcotest.fail "retransmit replayed a different outcome"
      | F_wire.Rejected { req = 1; _ } ->
          Alcotest.fail "acked seq answered Rejected during shutdown"
      | _ -> Alcotest.fail "unexpected late response")
    late;
  let sstats = match !stats with Some s -> s | None -> Alcotest.fail "server died" in
  Alcotest.(check int) "executed exactly once" 1
    (sstats.F_server.committed + sstats.F_server.aborted);
  Alcotest.(check int) "no protocol errors" 0 sstats.F_server.protocol_errors

let suites =
  [
    ( "frontend.wire",
      [
        Alcotest.test_case "round-trips every message" `Quick test_wire_roundtrip;
        Alcotest.test_case "reassembles fragmented reads" `Quick test_wire_partial;
        Alcotest.test_case "malformed input raises Protocol_error" `Quick test_wire_errors;
        Alcotest.test_case "legacy v1 Hello/Hello_ok still decode" `Quick test_wire_legacy_v1;
        Alcotest.test_case "fuzzed frames never crash the decoder" `Quick test_wire_fuzz;
      ] );
    ( "frontend.crashpoint",
      [ Alcotest.test_case "NVC_CRASHPOINT parsing and suppression" `Quick test_crashpoint_parse ]
    );
    ( "frontend.journal",
      [
        Alcotest.test_case "append/load round-trip, meta guard, clean lines" `Quick
          test_journal_roundtrip;
        Alcotest.test_case "torn tail healed to the CRC-valid prefix" `Quick
          test_journal_torn_tail;
        Alcotest.test_case "checkpoint + truncate keep only the uncovered tail" `Quick
          test_journal_checkpoint_truncate;
      ] );
    ( "frontend.proc",
      [ Alcotest.test_case "registry round-trips generated calls" `Quick test_proc_registry ] );
    ( "frontend.session",
      List.concat_map
        (fun (name, mk) ->
          [
            Alcotest.test_case (name ^ ": empty flush is None") `Quick
              (test_session_empty_flush mk);
            Alcotest.test_case (name ^ ": results gated on the epoch") `Quick
              (test_session_result_gating mk);
            Alcotest.test_case (name ^ ": auto-flush at exactly epoch_target") `Quick
              (test_session_auto_flush_exact mk);
          ])
        engines );
    ( "frontend.batcher",
      [
        Alcotest.test_case "size target closes the batch" `Quick test_batcher_size_close;
        Alcotest.test_case "deadline closes an under-filled batch" `Quick
          test_batcher_deadline_close;
        Alcotest.test_case "bounded admission rejects explicitly" `Quick test_batcher_overload;
        Alcotest.test_case "disconnect mid-epoch still executes admitted txns" `Quick
          test_batcher_disconnect;
        Alcotest.test_case "served equals replayed (serial, 32 clients)" `Quick
          (test_batcher_determinism spec_serial);
        Alcotest.test_case "served equals replayed (aria, 32 clients)" `Quick
          (test_batcher_determinism spec_aria);
        Alcotest.test_case "session dedup: duplicate, replayed, resume, reset" `Quick
          test_batcher_session_dedup;
        Alcotest.test_case "takeover: stale disconnect keeps the live channel" `Quick
          test_batcher_takeover;
        Alcotest.test_case "try_replay probes the window without admitting" `Quick
          test_batcher_try_replay;
        Alcotest.test_case "aria carryover drains under sustained overload" `Quick
          test_batcher_aria_overload_carryover;
      ] );
    ( "frontend.recovery",
      [
        Alcotest.test_case "journal replay reproduces the run (serial)" `Quick
          (test_batcher_journal_replay spec_serial);
        Alcotest.test_case "journal replay reproduces the run (aria)" `Quick
          (test_batcher_journal_replay spec_aria);
        Alcotest.test_case "checkpoint + tail replay equals the uncrashed twin" `Quick
          test_restart_checkpoint_twin;
      ] );
    ( "frontend.sockets",
      [
        Alcotest.test_case "serve + loadgen over a unix socket" `Quick test_socket_end_to_end;
        Alcotest.test_case "should_stop drains and exits cleanly" `Quick test_server_should_stop;
        Alcotest.test_case "garbage frames cost only their connection (serial)" `Quick
          (test_socket_garbage_resilience spec_serial);
        Alcotest.test_case "garbage frames cost only their connection (aria)" `Quick
          (test_socket_garbage_resilience spec_aria);
        Alcotest.test_case "garbage frames cost only their connection (zen)" `Quick
          (test_socket_garbage_resilience (Engine.spec Engine.Zen));
        Alcotest.test_case "session takeover survives the stale close" `Quick
          test_server_session_takeover;
        Alcotest.test_case "acked retransmit is never Rejected at shutdown" `Quick
          test_server_drain_retransmit;
      ] );
  ]
