(* Multi-shard routed serving: wire v3 shard-plane codec, the two-round
   Route/Fence protocol over in-process members, the cross-shard-count
   determinism oracle (N-shard served state == 1-shard state, any
   jobs), shard-journal recovery, and idempotent epoch re-drives. *)

module F_wire = Nv_frontend.Wire
module F_proc = Nv_frontend.Proc
module F_shard = Nv_frontend.Shard
module F_shard_set = Nv_frontend.Shard_set
module F_journal = Nv_frontend.Journal
module Engine = Nv_harness.Engine
module W = Nv_workloads.Workload
module Rng = Nv_util.Rng

(* ------------------------------------------------------------------ *)
(* Wire v3: the shard plane round-trips                                *)

let shard_reads =
  [|
    { F_wire.sr_table = 0; sr_key = 3L; sr_value = Some (Bytes.of_string "abc") };
    { F_wire.sr_table = 1; sr_key = -1L; sr_value = None };
    { F_wire.sr_table = 255; sr_key = Int64.max_int; sr_value = Some Bytes.empty };
  |]

let shard_requests : F_wire.request list =
  [
    F_wire.Shard_hello { gen = 42; shard = 2; shards = 3; version = F_wire.protocol_version };
    F_wire.Route
      {
        epoch = 7;
        calls =
          [|
            { F_wire.rc_client = 1; rc_seq = 9; rc_call = Bytes.of_string "call-a" };
            { F_wire.rc_client = 0xFFFFFFFE; rc_seq = 0; rc_call = Bytes.empty };
          |];
        reads = shard_reads;
      };
    F_wire.Route { epoch = 1; calls = [||]; reads = [||] };
    F_wire.Fence { epoch = 7; reads = shard_reads };
    F_wire.Fence { epoch = 1; reads = [||] };
  ]

let shard_responses : F_wire.response list =
  [
    F_wire.Shard_hello_ok { version = 3; shard = 2; shards = 3; applied = 41 };
    F_wire.Route_reads { epoch = 7; reads = shard_reads; complete = true };
    F_wire.Route_reads { epoch = 1; reads = [||]; complete = false };
    F_wire.Fence_ok
      { epoch = 7; outcomes = [| `Committed; `Aborted; `Deferred |]; digest = -1L };
    F_wire.Fence_ok { epoch = 1; outcomes = [||]; digest = 0L };
  ]

let test_wire_shard_roundtrip () =
  List.iter
    (fun req ->
      let b = F_wire.encode_request req in
      let r = F_wire.Reader.create () in
      F_wire.Reader.feed r b ~off:0 ~len:(Bytes.length b);
      match F_wire.Reader.next_payload r with
      | None -> Alcotest.fail "no payload"
      | Some p -> assert (F_wire.decode_request p = req))
    shard_requests;
  List.iter
    (fun resp ->
      let b = F_wire.encode_response resp in
      let r = F_wire.Reader.create () in
      F_wire.Reader.feed r b ~off:0 ~len:(Bytes.length b);
      match F_wire.Reader.next_payload r with
      | None -> Alcotest.fail "no payload"
      | Some p -> assert (F_wire.decode_response p = resp))
    shard_responses

let test_wire_reads_roundtrip () =
  assert (F_wire.decode_reads (F_wire.encode_reads shard_reads) = shard_reads);
  assert (F_wire.decode_reads (F_wire.encode_reads [||]) = [||])

(* ------------------------------------------------------------------ *)
(* In-process clusters                                                 *)

let small_ycsb () =
  Nv_workloads.Ycsb.(
    make
      (with_contention `High
         { default with rows = 128; value_size = 32; update_bytes = 32; hot_rows = 8;
           ops_per_txn = 4 }))

(* Smallbank's Balance/WriteCheck read undeclared keys across two
   tables, so its reconnaissance genuinely needs >1 Route round — the
   iterated-discovery path the declared-reads YCSB never takes. *)
let small_bank () =
  Nv_workloads.Smallbank.(
    make
      {
        customers = 64;
        hot_customers = 8;
        hot_probability = 0.9;
        abort_probability = 0.1;
      })

let mk_shard ?journal ~shard_id ~shards w =
  let spec = Engine.spec (Engine.Caracal Nvcaracal.Config.Nvcaracal) in
  let setup = Engine.setup ~epochs:128 ~epoch_txns:64 () in
  let packed = Engine.instantiate spec setup w in
  let registry = F_proc.of_workload w in
  let s =
    F_shard.create ~shard_id ~shards ?journal ~engine:packed ~registry ~tables:w.W.tables ()
  in
  F_shard.bulk_load s (w.W.load ());
  s

let mk_cluster ~shards w =
  let members = Array.init shards (fun i -> mk_shard ~shard_id:i ~shards w) in
  (members, F_shard_set.cluster (Array.map F_shard_set.in_process members))

(* A deterministic batch stream: same seed -> same calls, whatever the
   cluster size. *)
let gen_batches w ~seed ~batches ~batch_size =
  let rng = Rng.create seed in
  let registry = F_proc.of_workload w in
  Array.init batches (fun b ->
      Array.init batch_size (fun i ->
          let proc, args = w.W.gen_call rng in
          let txn =
            match F_proc.build registry ~proc ~args with
            | Ok t -> t
            | Error `Unknown_proc -> Alcotest.fail "unknown proc"
          in
          {
            F_shard_set.c_client = i mod 4;
            c_seq = (b * batch_size) + i;
            c_proc = proc;
            c_args = args;
            c_txn = txn;
          }))

let drive set batches = Array.map (fun batch -> F_shard_set.exec set batch) batches

(* The tentpole oracle: a routed 3-shard cluster and the 1-shard
   cluster (and the local single-engine seam) must produce identical
   verdict vectors and the same placement-independent digest. *)
let test_cluster_vs_single ?(mk_workload = small_ycsb) ~shards () =
  let w = mk_workload () in
  let batches = gen_batches w ~seed:7 ~batches:12 ~batch_size:24 in
  let _m1, one = mk_cluster ~shards:1 w in
  let _mn, many = mk_cluster ~shards w in
  let o1 = drive one batches in
  let on = drive many batches in
  Alcotest.(check int) "same batch count" (Array.length o1) (Array.length on);
  Array.iteri
    (fun i o ->
      if o <> on.(i) then Alcotest.failf "verdict vectors diverge at batch %d" i)
    o1;
  Alcotest.(check int64) "cluster digest is shard-count independent"
    (F_shard_set.digest one) (F_shard_set.digest many)

(* Satellite: the routed path is jobs-independent too — the per-shard
   engines may run their apply epochs on any pool width. *)
let test_cluster_jobs_identity () =
  let w = small_ycsb () in
  let batches = gen_batches w ~seed:11 ~batches:8 ~batch_size:24 in
  let digest_at jobs =
    let saved = !Engine.default_jobs in
    Engine.default_jobs := jobs;
    Fun.protect
      ~finally:(fun () -> Engine.default_jobs := saved)
      (fun () ->
        let _m, set = mk_cluster ~shards:3 w in
        let _ = drive set batches in
        F_shard_set.digest set)
  in
  let d1 = digest_at 1 in
  Alcotest.(check int64) "jobs 2 == jobs 1" d1 (digest_at 2);
  Alcotest.(check int64) "jobs 4 == jobs 1" d1 (digest_at 4)

(* Shard-journal recovery: kill a shard (here: just forget it), rebuild
   it from its own journal alone, and the cluster digest must be what
   it was — input logging is each shard's whole durability story. *)
let test_shard_journal_recovery () =
  let w = small_ycsb () in
  let shards = 3 in
  let batches = gen_batches w ~seed:13 ~batches:10 ~batch_size:24 in
  let journals =
    Array.init shards (fun i -> F_journal.create ~meta:(Printf.sprintf "shard%d" i) ())
  in
  let members =
    Array.init shards (fun i -> mk_shard ~journal:journals.(i) ~shard_id:i ~shards w)
  in
  let set = F_shard_set.cluster (Array.map F_shard_set.in_process members) in
  let _ = drive set batches in
  let digest_before = F_shard_set.digest set in
  let applied_before = Array.map F_shard.applied members in
  (* Rebuild every member from scratch + its journal records. *)
  let members' =
    Array.init shards (fun i ->
        let records, torn = F_journal.rescan journals.(i) in
        assert (not torn);
        assert (records <> []);
        let s = mk_shard ~shard_id:i ~shards w in
        F_shard.recover s ~records;
        s)
  in
  Array.iteri
    (fun i s ->
      Alcotest.(check int)
        (Printf.sprintf "shard %d applied" i)
        applied_before.(i) (F_shard.applied s))
    members';
  let set' = F_shard_set.cluster (Array.map F_shard_set.in_process members') in
  Alcotest.(check int64) "digest after journal-only rebuild" digest_before
    (F_shard_set.digest set');
  (* And the rebuilt cluster keeps serving: the next epoch runs. *)
  let more = gen_batches w ~seed:17 ~batches:1 ~batch_size:8 in
  let _ = drive set' more in
  ()

(* Idempotent re-drives: an applied epoch answers Route with the full
   historical read table and Fence with the cached verdicts — what a
   recovering router leans on. *)
let test_epoch_redrive () =
  let w = small_ycsb () in
  let shards = 3 in
  let members, set = mk_cluster ~shards w in
  let batches = gen_batches w ~seed:19 ~batches:3 ~batch_size:16 in
  let outcomes = drive set batches in
  Array.iter
    (fun s ->
      (* Re-route + re-fence every applied epoch on every member. *)
      for epoch = 1 to 3 do
        let reads, complete = F_shard.route s ~epoch ~calls:[||] ~reads:[||] in
        assert complete;
        let o, d = F_shard.fence s ~epoch ~reads in
        let expect : F_wire.shard_outcome array =
          Array.map
            (fun (x : [ `Committed | `Aborted | `Deferred ]) ->
              (x :> F_wire.shard_outcome))
            outcomes.(epoch - 1)
        in
        assert (o = expect);
        (* The cached digest is the shard's state as of that epoch:
           stable across re-drives, and equal to the live digest for
           the newest applied epoch. *)
        let o2, d2 = F_shard.fence s ~epoch ~reads in
        assert (o2 = o);
        Alcotest.(check int64)
          (Printf.sprintf "redrive digest stable (shard %d epoch %d)" (F_shard.shard_id s)
             epoch)
          d d2;
        if epoch = 3 then
          Alcotest.(check int64)
            (Printf.sprintf "final epoch digest is live (shard %d)" (F_shard.shard_id s))
            (F_shard.digest s) d;
        ignore reads
      done)
    members;
  (* An epoch gap is refused loudly. *)
  (match F_shard.route members.(0) ~epoch:6 ~calls:[||] ~reads:[||] with
  | _ -> Alcotest.fail "epoch gap accepted"
  | exception Failure _ -> ());
  (* A fenced generation is refused by handle. *)
  let hello gen =
    F_shard.handle members.(0)
      (F_wire.Shard_hello { gen; shard = 0; shards; version = F_wire.protocol_version })
  in
  (match hello 5 with F_wire.Shard_hello_ok _ -> () | _ -> Alcotest.fail "hello 5");
  (match hello 9 with F_wire.Shard_hello_ok _ -> () | _ -> Alcotest.fail "hello 9");
  match hello 5 with
  | F_wire.Server_error _ -> ()
  | _ -> Alcotest.fail "stale generation accepted"

(* The placement hash is pinned to the one Nvcaracal.Partition uses
   (FNV combine of key hash and table id, mod members): a routed
   cluster and an in-process partitioned engine must agree on
   ownership. *)
let test_placement_hash_matches_partition () =
  for k = 0 to 200 do
    let key = Int64.of_int (k * 7919) in
    Alcotest.(check int)
      (Printf.sprintf "owner of %Ld" key)
      (Nv_util.Fnv.combine (Nv_util.Fnv.hash_int64 key) 0 mod 3)
      (F_shard.owner ~shards:3 ~table:0 ~key)
  done

let suites =
  [
    ( "cluster.wire",
      [
        Alcotest.test_case "shard-plane frames round-trip" `Quick test_wire_shard_roundtrip;
        Alcotest.test_case "reads blob round-trips (journal sentinel)" `Quick
          test_wire_reads_roundtrip;
      ] );
    ( "cluster.oracle",
      [
        Alcotest.test_case "3-shard == 1-shard (verdicts + digest)" `Quick
          (test_cluster_vs_single ~shards:3);
        Alcotest.test_case "2-shard == 1-shard (verdicts + digest)" `Quick
          (test_cluster_vs_single ~shards:2);
        Alcotest.test_case "3-shard == 1-shard (smallbank, undeclared reads)" `Quick
          (test_cluster_vs_single ~mk_workload:small_bank ~shards:3);
        Alcotest.test_case "routed digest is jobs-independent (1/2/4)" `Quick
          test_cluster_jobs_identity;
        Alcotest.test_case "placement hash agrees with Partition" `Quick
          test_placement_hash_matches_partition;
      ] );
    ( "cluster.recovery",
      [
        Alcotest.test_case "shard journals alone rebuild the cluster" `Quick
          test_shard_journal_recovery;
        Alcotest.test_case "applied epochs re-drive idempotently" `Quick test_epoch_redrive;
      ] );
  ]
