(* Fault-injection tests: the media-fault model in [Pmem], the
   checksummed persistent layout, scrub/salvage recovery, idempotent
   crash-during-recovery, and replication failover under a primary
   crash. Reuses the mini-workload and reference model from
   [Test_recovery]. *)

open Nvcaracal
module Pmem = Nv_nvmm.Pmem
module Stats = Nv_nvmm.Stats
module Memspec = Nv_nvmm.Memspec
module Crc = Nv_util.Crc32c
module Rng = Nv_util.Rng

let stats () = Stats.create Memspec.default

exception Crash_now

(* ------------------------------------------------------------------ *)
(* CRC-32C and packed self-checking words                              *)

let test_crc32c_vectors () =
  Alcotest.(check int32) "check value" 0xE3069283l (Crc.string "123456789");
  Alcotest.(check int32) "empty" 0l (Crc.string "");
  let b = Bytes.of_string "xx123456789yy" in
  Alcotest.(check int32) "range" 0xE3069283l (Crc.bytes b 2 9);
  (* Incremental primitives agree with the one-shot form. *)
  let one = Crc.int64_crc 0x1122334455667788L in
  let inc = Crc.finish (Crc.int64 (Crc.init ()) 0x1122334455667788L) in
  Alcotest.(check int32) "incremental int64" one inc

let test_packed_words () =
  let w = Crc.pack ~salt:0x31 77L in
  Alcotest.(check (option int64)) "roundtrip" (Some 77L) (Crc.unpack ~salt:0x31 w);
  Alcotest.(check (option int64)) "salt mismatch" None (Crc.unpack ~salt:0x32 w);
  Alcotest.(check (option int64)) "bit flip detected" None
    (Crc.unpack ~salt:0x31 (Int64.logxor w 0x400000L));
  (* Freshly zeroed NVMM must parse as valid empty state. *)
  Alcotest.(check (option int64)) "all-zero word is value 0" (Some 0L)
    (Crc.unpack ~salt:0x31 0L);
  Alcotest.check_raises "oversized value rejected"
    (Invalid_argument "Crc32c.pack: value 4294967296 exceeds 32 bits") (fun () ->
      ignore (Crc.pack 0x1_0000_0000L))

(* ------------------------------------------------------------------ *)
(* Pmem fault model                                                    *)

let test_torn_lines () =
  (* Two unflushed stores to one line, torn with probability 1: each
     8-byte word independently picks a store state, so (unlike any
     legal image) the second store can survive without the first. *)
  let seen_illegal = ref false in
  for seed = 1 to 100 do
    let p = Pmem.create ~mode:Pmem.Crash_safe ~size:4096 () in
    Pmem.set_i64 p 0 1L;
    Pmem.set_i64 p 8 2L;
    let fr =
      Pmem.crash_with_faults p ~rng:(Rng.create seed)
        ~model:{ Pmem.no_faults with Pmem.torn_frac = 1.0 }
    in
    Alcotest.(check int) "one torn line" 1 fr.Pmem.torn_lines;
    let a = Pmem.get_i64 p 0 and b = Pmem.get_i64 p 8 in
    Alcotest.(check bool) "word values legal" true
      ((a = 0L || a = 1L) && (b = 0L || b = 2L));
    if a = 0L && b = 2L then seen_illegal := true
  done;
  Alcotest.(check bool) "some image was prefix-inconsistent" true !seen_illegal;
  (* torn_frac 0 over the same stores is exactly the legal model. *)
  let p = Pmem.create ~mode:Pmem.Crash_safe ~size:4096 () in
  Pmem.set_i64 p 0 1L;
  let fr = Pmem.crash_with_faults p ~rng:(Rng.create 1) ~model:Pmem.no_faults in
  Alcotest.(check int) "no torn lines" 0 fr.Pmem.torn_lines

let test_bit_rot () =
  let p = Pmem.create ~mode:Pmem.Crash_safe ~size:4096 () in
  let s = stats () in
  Pmem.set_i64 p 256 0xAAAAAAAAAAAAAAAAL;
  Pmem.persist p s ~off:256 ~len:8;
  (* A dirty line is immune: rot takes time, it hits cold media. *)
  Pmem.set_i64 p 0 1L;
  let before = Bytes.to_string (Pmem.read_bytes p ~off:0 ~len:4096) in
  let hit, flipped = Pmem.inject_bit_rot p ~rng:(Rng.create 3) ~lines:8 ~max_bits:2 in
  let after = Bytes.to_string (Pmem.read_bytes p ~off:0 ~len:4096) in
  Alcotest.(check bool) "some lines hit" true (hit > 0 && flipped >= hit);
  Alcotest.(check bool) "content changed" true (before <> after);
  Alcotest.(check int64) "dirty line untouched" 1L (Pmem.get_i64 p 0);
  Alcotest.(check bool) "fault report cumulative" true
    (Pmem.faults_injected p && (Pmem.faults p).Pmem.rotted_lines = hit
    && (Pmem.faults p).Pmem.flipped_bits = flipped)

let test_dead_lines () =
  let p = Pmem.create ~mode:Pmem.Crash_safe ~size:4096 () in
  let killed = Pmem.kill_lines p ~rng:(Rng.create 7) ~n:2 in
  Alcotest.(check bool) "lines killed" true (killed >= 1);
  Alcotest.(check int) "reported" killed (Pmem.faults p).Pmem.dead_lines;
  (* Find a dead line; content reads back all-ones and charged reads
     record a media fault. *)
  let li = ref (-1) in
  for i = 4096 / 64 - 1 downto 0 do
    if Pmem.is_dead_line p ~off:(i * 64) then li := i
  done;
  Alcotest.(check bool) "dead line findable" true (!li >= 0);
  Alcotest.(check int64) "poisoned content" (-1L) (Pmem.get_i64 p (!li * 64));
  let s = stats () in
  Pmem.charge_read p s ~off:(!li * 64) ~len:8;
  Pmem.charge_read p s ~off:((!li * 64) + 8) ~len:8;
  Alcotest.(check int) "charged reads fault" 2 (Stats.counters s).Stats.media_faults;
  let s2 = stats () in
  Pmem.charge_read p s2 ~off:(((!li + 1) * 64) mod 4096) ~len:8;
  Alcotest.(check int) "healthy line clean" 0 (Stats.counters s2).Stats.media_faults

let test_corrupt_range () =
  let p = Pmem.create ~mode:Pmem.Crash_safe ~size:4096 () in
  Pmem.write_bytes p ~off:128 (Bytes.of_string "payload");
  Pmem.corrupt_range p ~off:128 ~len:7 ~mask:0x5A;
  Alcotest.(check bool) "xor applied" true
    (Bytes.to_string (Pmem.read_bytes p ~off:128 ~len:7) <> "payload");
  Pmem.corrupt_range p ~off:128 ~len:7 ~mask:0x5A;
  Alcotest.(check string) "xor involutive" "payload"
    (Bytes.to_string (Pmem.read_bytes p ~off:128 ~len:7))

let test_faults_empty_without_injection () =
  let p = Pmem.create ~mode:Pmem.Crash_safe ~size:4096 () in
  Pmem.set_i64 p 0 1L;
  Pmem.crash p ~rng:(Rng.create 1);
  Alcotest.(check bool) "legal crash injects nothing" false (Pmem.faults_injected p)

(* ------------------------------------------------------------------ *)
(* Crash-image adversaries through full recovery                       *)

(* Run the Test_recovery scenario but tear the region with an explicit
   adversary instead of a random legal image. *)
let run_adversary_scenario ~choose ~scrub () =
  let config = Test_recovery.test_config in
  let tables = Test_recovery.tables in
  let db = Db.create ~config ~tables () in
  Db.bulk_load db Test_recovery.load_rows;
  let model = Test_recovery.model_load () in
  let seed = 19 in
  for epoch = 2 to 3 do
    let batch = Test_recovery.gen_batch ~seed ~epoch model in
    ignore (Db.run_epoch db (Array.map Test_recovery.txn_of_ops batch));
    Test_recovery.model_apply model batch
  done;
  let crash_batch = Test_recovery.gen_batch ~seed ~epoch:4 model in
  Db.set_phase_hook db (fun p -> if p = Db.Exec_txn 7 then raise Crash_now);
  (try ignore (Db.run_epoch db (Array.map Test_recovery.txn_of_ops crash_batch))
   with Crash_now -> ());
  let pmem = Db.pmem db in
  Pmem.crash_with pmem ~choose;
  let db2, report =
    Db.recover ~config ~tables ~pmem ~rebuild:Test_recovery.rebuild ~scrub ()
  in
  (* The crash hit mid-execution, after the input log committed. *)
  Test_recovery.model_apply model crash_batch;
  Test_recovery.check_states_equal "adversary recovery" model db2;
  report

let test_worst_case_adversaries () =
  (* Oldest-state-per-line (drops every unflushed store), newest-state,
     and an alternating pattern: all legal, all must recover. *)
  ignore (run_adversary_scenario ~choose:(fun ~line:_ ~options:_ -> 0) ~scrub:false ());
  ignore
    (run_adversary_scenario ~choose:(fun ~line:_ ~options -> options - 1) ~scrub:false ());
  ignore
    (run_adversary_scenario
       ~choose:(fun ~line ~options -> if line mod 2 = 0 then 0 else options - 1)
       ~scrub:false ())

let test_crash_all_persisted_recovers () =
  let db = Db.create ~config:Test_recovery.test_config ~tables:Test_recovery.tables () in
  Db.bulk_load db Test_recovery.load_rows;
  let model = Test_recovery.model_load () in
  let batch = Test_recovery.gen_batch ~seed:19 ~epoch:2 model in
  ignore (Db.run_epoch db (Array.map Test_recovery.txn_of_ops batch));
  Test_recovery.model_apply model batch;
  let pmem = Db.pmem db in
  Pmem.crash_all_persisted pmem;
  let db2, _ =
    Db.recover ~config:Test_recovery.test_config ~tables:Test_recovery.tables ~pmem
      ~rebuild:Test_recovery.rebuild ()
  in
  Test_recovery.check_states_equal "all-persisted recovery" model db2

let test_scrub_clean_on_legal_images () =
  (* A scrub over legal crash images must never report damage or drop
     the log: checksums make corruption detectable, not false alarms.
     (Repair work — crc normalization, turnover stale drops — is fine:
     those are torn states the legal model can produce.) *)
  List.iter
    (fun choose ->
      let report = run_adversary_scenario ~choose ~scrub:true () in
      Alcotest.(check bool) "scrubbed" true report.Report.scrubbed;
      Alcotest.(check bool) "no damage" true (report.Report.damage = []);
      Alcotest.(check bool) "log kept" false report.Report.log_dropped;
      Alcotest.(check int) "no allocator salvage" 0 report.Report.alloc_salvaged;
      Alcotest.(check int) "no counter salvage" 0 report.Report.counter_salvaged)
    [
      (fun ~line:_ ~options:_ -> 0);
      (fun ~line:_ ~options -> options - 1);
      (fun ~line ~options -> if line mod 3 = 0 then 0 else options - 1);
    ]

(* ------------------------------------------------------------------ *)
(* Guards                                                              *)

let test_requires_crash_safe () =
  let config = Config.make ~cores:2 () in
  let db = Db.create ~config ~tables:Test_recovery.tables () in
  Db.bulk_load db Test_recovery.load_rows;
  Alcotest.check_raises "crash guarded"
    (Invalid_argument "Db.crash: requires a crash_safe configuration") (fun () ->
      ignore (Db.crash db ~rng:(Rng.create 1)));
  let pmem = Pmem.create ~size:4096 () in
  Alcotest.check_raises "recover guarded"
    (Invalid_argument "Db.recover: requires a crash_safe configuration") (fun () ->
      ignore
        (Db.recover ~config ~tables:Test_recovery.tables ~pmem
           ~rebuild:Test_recovery.rebuild ()))

(* ------------------------------------------------------------------ *)
(* Crash in the middle of recovery (recovery_hook)                     *)

let test_crash_during_recovery_each_phase () =
  List.iter
    (fun recrash_at ->
      let config = Test_recovery.test_config in
      let tables = Test_recovery.tables in
      let db = Db.create ~config ~tables () in
      Db.bulk_load db Test_recovery.load_rows;
      let model = Test_recovery.model_load () in
      let seed = 29 in
      for epoch = 2 to 3 do
        let batch = Test_recovery.gen_batch ~seed ~epoch model in
        ignore (Db.run_epoch db (Array.map Test_recovery.txn_of_ops batch));
        Test_recovery.model_apply model batch
      done;
      let crash_batch = Test_recovery.gen_batch ~seed ~epoch:4 model in
      Db.set_phase_hook db (fun p -> if p = Db.Exec_txn 5 then raise Crash_now);
      (try ignore (Db.run_epoch db (Array.map Test_recovery.txn_of_ops crash_batch))
       with Crash_now -> ());
      Test_recovery.model_apply model crash_batch;
      let pmem = Db.crash db ~rng:(Rng.create 41) in
      (* First attempt dies at the given recovery milestone; the region
         is torn again and the second attempt must converge. *)
      (match
         Db.recover ~config ~tables ~pmem ~rebuild:Test_recovery.rebuild
           ~recovery_hook:(fun p -> if p = recrash_at then raise Crash_now)
           ()
       with
      | _ -> Alcotest.fail "expected crash during recovery"
      | exception Crash_now -> Pmem.crash pmem ~rng:(Rng.create 43));
      let db2, _ = Db.recover ~config ~tables ~pmem ~rebuild:Test_recovery.rebuild () in
      Test_recovery.check_states_equal "recovery after mid-recovery crash" model db2;
      (* And the database keeps working. *)
      let next = Test_recovery.gen_batch ~seed ~epoch:5 model in
      ignore (Db.run_epoch db2 (Array.map Test_recovery.txn_of_ops next));
      Test_recovery.model_apply model next;
      Test_recovery.check_states_equal "epoch after mid-recovery crash" model db2)
    [ Db.Rec_meta_recovered; Db.Rec_log_loaded; Db.Rec_scan_done; Db.Rec_replay_done ]

(* ------------------------------------------------------------------ *)
(* Targeted corruption: scrub detects, salvages, and reports           *)

let find_pattern pmem pattern =
  let size = Pmem.size pmem in
  let hay = Bytes.to_string (Pmem.read_bytes pmem ~off:0 ~len:size) in
  let n = String.length pattern in
  let rec go i =
    if i + n > size then None
    else if String.sub hay i n = pattern then Some i
    else go (i + 1)
  in
  go 0

let test_scrub_reports_corrupt_current_version () =
  let config = Test_recovery.test_config in
  let tables = Test_recovery.tables in
  let db = Db.create ~config ~tables () in
  (* Key 5 carries a unique 200-byte pool value; the rest are plain. *)
  let marker = String.init 32 (fun i -> Char.chr (0x41 + (i * 7 mod 26))) in
  let victim = Bytes.of_string (marker ^ String.make 168 'v') in
  Db.bulk_load db
    (Seq.init 12 (fun i ->
         (0, Int64.of_int i, if i = 5 then victim else Bytes.make 16 'p')));
  let pmem = Db.pmem db in
  Pmem.crash_all_persisted pmem;
  let off =
    match find_pattern pmem marker with
    | Some off -> off
    | None -> Alcotest.fail "victim value not found in region"
  in
  Pmem.corrupt_range pmem ~off ~len:8 ~mask:0xFF;
  let db2, report =
    Db.recover ~config ~tables ~pmem ~rebuild:Test_recovery.rebuild ~scrub:true ()
  in
  Alcotest.(check int) "one damage entry" 1 (List.length report.Report.damage);
  (match report.Report.damage with
  | [ d ] ->
      Alcotest.(check int) "table attributed" 0 d.Report.d_table;
      Alcotest.(check int64) "key attributed" 5L d.Report.d_key;
      Alcotest.(check bool) "kind current-version" true
        (d.Report.d_kind = `Current_version)
  | _ -> assert false);
  Alcotest.(check (option string)) "damaged key dropped" None
    (Option.map Bytes.to_string (Db.read_committed db2 ~table:0 ~key:5L));
  Alcotest.(check (option string)) "other keys intact" (Some (String.make 16 'p'))
    (Option.map Bytes.to_string (Db.read_committed db2 ~table:0 ~key:4L));
  (* Without scrub the same corruption goes unnoticed: checksums are
     only verified when asked (they are off the hot path). *)
  Alcotest.(check bool) "reported loudly, not absorbed" true
    (Report.has_salvage report)

let test_scrub_drops_corrupt_log () =
  let config = Test_recovery.test_config in
  let tables = Test_recovery.tables in
  let db = Db.create ~config ~tables () in
  Db.bulk_load db Test_recovery.load_rows;
  let model = Test_recovery.model_load () in
  let seed = 67 in
  let batch2 = Test_recovery.gen_batch ~seed ~epoch:2 model in
  ignore (Db.run_epoch db (Array.map Test_recovery.txn_of_ops batch2));
  Test_recovery.model_apply model batch2;
  (* Crash after execution: the input log for epoch 3 is committed. *)
  let crash_batch = Test_recovery.gen_batch ~seed ~epoch:3 model in
  Db.set_phase_hook db (fun p -> if p = Db.Exec_done then raise Crash_now);
  (try ignore (Db.run_epoch db (Array.map Test_recovery.txn_of_ops crash_batch))
   with Crash_now -> ());
  let pmem = Db.pmem db in
  Pmem.crash_all_persisted pmem;
  (* Corrupt the logged input record of the first non-empty txn. *)
  let input =
    match
      Array.find_opt
        (fun ops -> Bytes.length (Test_recovery.encode_ops ops) > 8)
        crash_batch
    with
    | Some ops -> Bytes.to_string (Test_recovery.encode_ops ops)
    | None -> Alcotest.fail "no loggable txn in batch"
  in
  let off =
    match find_pattern pmem input with
    | Some off -> off
    | None -> Alcotest.fail "logged input not found in region"
  in
  Pmem.corrupt_range pmem ~off ~len:1 ~mask:0x10;
  let db2, report =
    Db.recover ~config ~tables ~pmem ~rebuild:Test_recovery.rebuild ~scrub:true ()
  in
  Alcotest.(check bool) "log dropped" true report.Report.log_dropped;
  Alcotest.(check int) "nothing replayed" 0 report.Report.replayed_txns;
  Alcotest.(check bool) "log damage reported" true
    (List.exists (fun d -> d.Report.d_kind = `Log) report.Report.damage);
  (* The crashed epoch is gone; state reverts to the last checkpoint. *)
  Test_recovery.check_states_equal "state without the dropped epoch" model db2

(* ------------------------------------------------------------------ *)
(* Replication failover under a primary crash                          *)

let test_failover_after_primary_crash () =
  let config = Test_recovery.test_config in
  let pair =
    Replication.create ~config ~tables:Test_recovery.tables
      ~rebuild:Test_recovery.rebuild ()
  in
  Replication.bulk_load pair Test_recovery.load_rows;
  (* Oracle: a single database running the same committed batches. *)
  let oracle = Db.create ~config ~tables:Test_recovery.tables () in
  Db.bulk_load oracle Test_recovery.load_rows;
  let model = Test_recovery.model_load () in
  let seed = 83 in
  for epoch = 2 to 4 do
    let batch = Test_recovery.gen_batch ~seed ~epoch model in
    ignore (Replication.submit pair (Array.map Test_recovery.txn_of_ops batch));
    ignore (Db.run_epoch oracle (Array.map Test_recovery.txn_of_ops batch));
    Test_recovery.model_apply model batch
  done;
  (* The primary dies mid-epoch 5; its inputs were never shipped, so
     the epoch is lost — exactly the single-node no-log-commit rule. *)
  let crash_batch = Test_recovery.gen_batch ~seed ~epoch:5 model in
  Db.set_phase_hook (Replication.primary_db pair) (fun p ->
      if p = Db.Exec_txn 4 then raise Crash_now);
  (match Replication.submit pair (Array.map Test_recovery.txn_of_ops crash_batch) with
  | _ -> Alcotest.fail "expected primary crash"
  | exception Crash_now -> ());
  let promoted = Replication.failover_db pair in
  Test_recovery.check_states_equal "promoted state = committed epochs" model promoted;
  (* The promoted database re-executes the lost batch and continues. *)
  ignore (Db.run_epoch promoted (Array.map Test_recovery.txn_of_ops crash_batch));
  ignore (Db.run_epoch oracle (Array.map Test_recovery.txn_of_ops crash_batch));
  Test_recovery.model_apply model crash_batch;
  Test_recovery.check_states_equal "promoted re-runs lost batch" model promoted;
  let s_o = ref [] and s_p = ref [] in
  Db.iter_committed oracle ~table:0 (fun k v -> s_o := (k, Bytes.to_string v) :: !s_o);
  Db.iter_committed promoted ~table:0 (fun k v -> s_p := (k, Bytes.to_string v) :: !s_p);
  Alcotest.(check bool) "promoted equals oracle" true
    (List.sort compare !s_o = List.sort compare !s_p)

(* ------------------------------------------------------------------ *)
(* Fault-campaign smoke test                                           *)

let test_fault_fuzz_smoke () =
  let outcome = Nv_harness.Fuzzer.run ~seed:3 ~iterations:6 ~faults:true () in
  Alcotest.(check (list string)) "no failures" [] outcome.Nv_harness.Fuzzer.failures;
  Alcotest.(check int) "all iterations faulted" 6 outcome.Nv_harness.Fuzzer.faulted;
  Alcotest.(check bool) "crashes injected" true
    (outcome.Nv_harness.Fuzzer.crashes_injected >= 6)

let suites =
  [
    ( "faults",
      [
        Alcotest.test_case "crc32c vectors" `Quick test_crc32c_vectors;
        Alcotest.test_case "packed self-checking words" `Quick test_packed_words;
        Alcotest.test_case "torn lines" `Quick test_torn_lines;
        Alcotest.test_case "bit rot" `Quick test_bit_rot;
        Alcotest.test_case "dead lines" `Quick test_dead_lines;
        Alcotest.test_case "corrupt_range" `Quick test_corrupt_range;
        Alcotest.test_case "legal crash injects no faults" `Quick
          test_faults_empty_without_injection;
        Alcotest.test_case "worst-case crash adversaries" `Quick test_worst_case_adversaries;
        Alcotest.test_case "crash_all_persisted recovers" `Quick
          test_crash_all_persisted_recovers;
        Alcotest.test_case "scrub clean on legal images" `Quick
          test_scrub_clean_on_legal_images;
        Alcotest.test_case "crash/recover require crash_safe" `Quick test_requires_crash_safe;
        Alcotest.test_case "crash during recovery (each phase)" `Quick
          test_crash_during_recovery_each_phase;
        Alcotest.test_case "scrub reports corrupt current version" `Quick
          test_scrub_reports_corrupt_current_version;
        Alcotest.test_case "scrub drops corrupt log" `Quick test_scrub_drops_corrupt_log;
        Alcotest.test_case "failover after primary crash" `Quick
          test_failover_after_primary_crash;
        Alcotest.test_case "fault fuzz smoke" `Quick test_fault_fuzz_smoke;
      ] );
  ]
