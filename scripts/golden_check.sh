#!/usr/bin/env bash
# Golden-output check: a seeded `nvdb run` with --trace/--metrics must
# reproduce the committed reference outputs byte for byte. The engine's
# entire pipeline is deterministic in simulated time, so any diff here
# is a real behaviour change — commit new goldens only when the change
# is intended (regenerate with the command below, writing stdout to
# test/golden/run_ycsb_stdout.txt).
set -euo pipefail
cd "$(dirname "$0")/.."

dune build bin/nvdb.exe

rm -rf _golden_tmp
mkdir -p _golden_tmp

# The stdout echoes the trace/metrics paths, so the golden run always
# uses the same fixed relative paths under _golden_tmp/.
./_build/default/bin/nvdb.exe run -w ycsb -e nvcaracal --epochs 3 --txns 300 \
  --trace _golden_tmp/trace.json --metrics _golden_tmp/metrics.jsonl \
  > _golden_tmp/stdout.txt

diff -u test/golden/run_ycsb_stdout.txt _golden_tmp/stdout.txt
diff -u test/golden/run_ycsb_trace.json _golden_tmp/trace.json
diff -u test/golden/run_ycsb_metrics.jsonl _golden_tmp/metrics.jsonl

# Front-end golden: the serving pipeline driven deterministically in
# process (seeded clients, manual tick clock — `nvdb serve-sim`). Only
# simulated-clock/tick-valued fields appear in this output; wall-clock
# data (per-proc latency percentiles, domain telemetry) is deliberately
# kept out of the metrics registry and served via the Stats wire
# message instead, so these files stay byte-stable.
./_build/default/bin/nvdb.exe serve-sim -w ycsb --clients 8 --txns 100 \
  --batch-target 128 --deadline-ticks 4 \
  --metrics _golden_tmp/servesim_metrics.jsonl > _golden_tmp/servesim_stdout.txt

diff -u test/golden/servesim_ycsb_stdout.txt _golden_tmp/servesim_stdout.txt
diff -u test/golden/servesim_ycsb_metrics.jsonl _golden_tmp/servesim_metrics.jsonl

rm -rf _golden_tmp
echo "golden outputs byte-identical"
