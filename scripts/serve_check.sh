#!/usr/bin/env bash
# Networked front-end smoke check: serve the wire protocol on a Unix
# socket, drive it with 32 concurrent clients for a few thousand
# transactions, and assert a clean shutdown with zero protocol errors
# on both sides.
#
# The server's admitted work is deterministic given the admitted
# batches (asserted in-process by test/test_frontend.ml); this script
# checks the real-socket path: framing under concurrency, admission,
# checkpoint-gated replies, Bye/Shutdown draining, exit codes, and the
# live observability surface (`nvdb stats` + the periodic
# --stats-interval JSONL flush).
set -euo pipefail
cd "$(dirname "$0")/.."

SOCK="${TMPDIR:-/tmp}/nvdb-serve-check-$$.sock"
SERVER_OUT="$(mktemp)"
CLIENT_OUT="$(mktemp)"
STATS_OUT="$(mktemp)"
STATS_JSONL="$(mktemp)"
trap 'kill $SERVER_PID 2>/dev/null || true; rm -f "$SOCK" "$SERVER_OUT" "$CLIENT_OUT" "$STATS_OUT" "$STATS_JSONL"' EXIT

dune build bin/nvdb.exe

NVDB=_build/default/bin/nvdb.exe

"$NVDB" serve --workload ycsb --listen "$SOCK" \
  --batch-target 128 --deadline-ticks 4 --capacity 20000 \
  --stats-interval 0.25 --stats-out "$STATS_JSONL" \
  >"$SERVER_OUT" 2>&1 &
SERVER_PID=$!

# Wait for the socket to appear (the server bulk-loads first).
for _ in $(seq 1 600); do
  [ -S "$SOCK" ] && break
  kill -0 "$SERVER_PID" 2>/dev/null || { echo "server died before binding"; cat "$SERVER_OUT"; exit 1; }
  sleep 0.1
done
[ -S "$SOCK" ] || { echo "server never bound $SOCK"; cat "$SERVER_OUT"; exit 1; }

# Drive the load in the background so a `stats` snapshot can be pulled
# from the live, mid-flight server.
"$NVDB" loadgen --workload ycsb --listen "$SOCK" \
  --clients 32 --txns 100 --window 4 --shutdown \
  >"$CLIENT_OUT" 2>&1 &
LOADGEN_PID=$!

# Poll `nvdb stats` until a snapshot shows serving activity (per-proc
# wall-latency percentiles appear once the first replies went out).
STATS_OK=0
for _ in $(seq 1 100); do
  if "$NVDB" stats --listen "$SOCK" >"$STATS_OUT" 2>/dev/null \
     && grep -q '"ycsb.rmw"' "$STATS_OUT"; then
    STATS_OK=1
    break
  fi
  kill -0 "$SERVER_PID" 2>/dev/null || break
  sleep 0.05
done
[ "$STATS_OK" -eq 1 ] || { echo "never got a live stats snapshot with serving activity"; cat "$STATS_OUT"; exit 1; }

# The snapshot must carry the live-serving schema: uptime, admission
# counters, per-procedure wall-latency percentiles, domain telemetry.
for field in '"uptime_s"' '"clients_connected"' '"admitted"' '"epoch_rate_per_s"' \
             '"p50_ms"' '"p99_ms"' '"p999_ms"' '"domains"' '"busy_ns"'; do
  grep -q "$field" "$STATS_OUT" || { echo "stats snapshot missing $field"; cat "$STATS_OUT"; exit 1; }
done

wait "$LOADGEN_PID" || { echo "loadgen failed"; cat "$CLIENT_OUT"; exit 1; }

# The Shutdown request must drain the server to a clean exit.
SERVER_RC=0
wait "$SERVER_PID" || SERVER_RC=$?
if [ "$SERVER_RC" -ne 0 ]; then
  echo "server exited with $SERVER_RC"; cat "$SERVER_OUT"; exit 1
fi

# The periodic --stats-interval flush left a JSONL trail: at least one
# line, every line a stats object.
[ -s "$STATS_JSONL" ] || { echo "no periodic stats JSONL was flushed"; exit 1; }
grep -cq '"uptime_s"' "$STATS_JSONL" || { echo "stats JSONL lines malformed"; cat "$STATS_JSONL"; exit 1; }

grep -q '^sent *3200$' "$CLIENT_OUT" || { echo "loadgen did not send 3200 txns"; cat "$CLIENT_OUT"; exit 1; }
grep -q '^protocol errors *0$' "$CLIENT_OUT" || { echo "client-side protocol errors"; cat "$CLIENT_OUT"; exit 1; }
grep -q '^protocol errors *0$' "$SERVER_OUT" || { echo "server-side protocol errors"; cat "$SERVER_OUT"; exit 1; }
grep -q '^admitted *3200$' "$SERVER_OUT" || { echo "server did not admit all 3200 txns"; cat "$SERVER_OUT"; exit 1; }
grep -q '^clients served *32$' "$SERVER_OUT" || { echo "server did not see 32 clients"; cat "$SERVER_OUT"; exit 1; }
[ -S "$SOCK" ] && { echo "server left its socket behind"; exit 1; }

echo "serve-check OK: 32 clients x 100 txns, clean shutdown, zero protocol errors"
sed -n 's/^/  server: /p' "$SERVER_OUT"

# --- Second leg: graceful SIGTERM shutdown of a journaled server. ---
# No client ever sends Shutdown here; the operator does, with a signal.
# The server must drain, flush its journal, remove the socket, and
# exit 0.
SOCK2="${TMPDIR:-/tmp}/nvdb-serve-term-$$.sock"
JOURNAL2="${TMPDIR:-/tmp}/nvdb-serve-term-$$.journal"
SERVER2_OUT="$(mktemp)"
CLIENT2_OUT="$(mktemp)"
trap 'kill $SERVER_PID $SERVER2_PID 2>/dev/null || true; rm -f "$SOCK" "$SERVER_OUT" "$CLIENT_OUT" "$STATS_OUT" "$STATS_JSONL" "$SOCK2" "$JOURNAL2" "$JOURNAL2.ckpt" "$SERVER2_OUT" "$CLIENT2_OUT"' EXIT

"$NVDB" serve --workload ycsb --listen "$SOCK2" \
  --batch-target 64 --deadline-ticks 4 --capacity 20000 \
  --journal "$JOURNAL2" \
  >"$SERVER2_OUT" 2>&1 &
SERVER2_PID=$!

for _ in $(seq 1 600); do
  [ -S "$SOCK2" ] && break
  kill -0 "$SERVER2_PID" 2>/dev/null || { echo "journaled server died before binding"; cat "$SERVER2_OUT"; exit 1; }
  sleep 0.1
done
[ -S "$SOCK2" ] || { echo "journaled server never bound $SOCK2"; cat "$SERVER2_OUT"; exit 1; }

# A short load with no Shutdown: clients drain via Bye and the server
# keeps serving afterwards.
"$NVDB" loadgen --workload ycsb --listen "$SOCK2" \
  --clients 8 --txns 25 --window 4 \
  >"$CLIENT2_OUT" 2>&1 || { echo "loadgen (SIGTERM leg) failed"; cat "$CLIENT2_OUT"; exit 1; }

kill -TERM "$SERVER2_PID"
SERVER2_RC=0
wait "$SERVER2_PID" || SERVER2_RC=$?
if [ "$SERVER2_RC" -ne 0 ]; then
  echo "SIGTERM'd server exited with $SERVER2_RC (want 0)"; cat "$SERVER2_OUT"; exit 1
fi
grep -q '^protocol errors *0$' "$SERVER2_OUT" || { echo "SIGTERM leg: server-side protocol errors"; cat "$SERVER2_OUT"; exit 1; }
grep -q '^admitted *200$' "$SERVER2_OUT" || { echo "SIGTERM leg: server did not admit all 200 txns"; cat "$SERVER2_OUT"; exit 1; }
grep -q '^journal records ' "$SERVER2_OUT" || { echo "SIGTERM leg: no journal accounting in server stats"; cat "$SERVER2_OUT"; exit 1; }
[ -S "$SOCK2" ] && { echo "SIGTERM'd server left its socket behind"; exit 1; }
[ -f "$JOURNAL2" ] || { echo "SIGTERM leg: journal file missing"; exit 1; }

echo "serve-check OK: SIGTERM drained a journaled server to a clean exit"

# --- Third leg: a 3-shard routed cluster serves the same clients. ---
# The router spawns three engine shard processes, routes epochs over
# the wire-v3 shard plane (Route/Fence), and must drain to a clean
# exit with zero protocol errors, leaving a router journal plus one
# journal per shard behind.
SOCK3="${TMPDIR:-/tmp}/nvdb-serve-cluster-$$.sock"
JOURNAL3="${TMPDIR:-/tmp}/nvdb-serve-cluster-$$.journal"
SERVER3_OUT="$(mktemp)"
CLIENT3_OUT="$(mktemp)"
trap 'kill $SERVER_PID $SERVER2_PID $SERVER3_PID 2>/dev/null || true; rm -f "$SOCK" "$SERVER_OUT" "$CLIENT_OUT" "$STATS_OUT" "$STATS_JSONL" "$SOCK2" "$JOURNAL2" "$JOURNAL2.ckpt" "$SERVER2_OUT" "$CLIENT2_OUT" "$SOCK3" "$SOCK3".shard* "$JOURNAL3" "$JOURNAL3".shard* "$SERVER3_OUT" "$CLIENT3_OUT"' EXIT

"$NVDB" serve --workload ycsb --listen "$SOCK3" --shards 3 \
  --batch-target 64 --deadline-ticks 4 --capacity 20000 \
  --journal "$JOURNAL3" \
  >"$SERVER3_OUT" 2>&1 &
SERVER3_PID=$!

for _ in $(seq 1 600); do
  [ -S "$SOCK3" ] && break
  kill -0 "$SERVER3_PID" 2>/dev/null || { echo "cluster router died before binding"; cat "$SERVER3_OUT"; exit 1; }
  sleep 0.1
done
[ -S "$SOCK3" ] || { echo "cluster router never bound $SOCK3"; cat "$SERVER3_OUT"; exit 1; }

"$NVDB" loadgen --workload ycsb --listen "$SOCK3" \
  --clients 8 --txns 25 --window 4 --shutdown \
  >"$CLIENT3_OUT" 2>&1 || { echo "loadgen (cluster leg) failed"; cat "$CLIENT3_OUT"; exit 1; }

SERVER3_RC=0
wait "$SERVER3_PID" || SERVER3_RC=$?
if [ "$SERVER3_RC" -ne 0 ]; then
  echo "cluster router exited with $SERVER3_RC (want 0)"; cat "$SERVER3_OUT"; exit 1
fi
grep -q '^protocol errors *0$' "$CLIENT3_OUT" || { echo "cluster leg: client-side protocol errors"; cat "$CLIENT3_OUT"; exit 1; }
grep -q '^protocol errors *0$' "$SERVER3_OUT" || { echo "cluster leg: router-side protocol errors"; cat "$SERVER3_OUT"; exit 1; }
grep -q '^admitted *200$' "$SERVER3_OUT" || { echo "cluster leg: router did not admit all 200 txns"; cat "$SERVER3_OUT"; exit 1; }
grep -q '^shard respawns *0$' "$SERVER3_OUT" || { echo "cluster leg: unexpected shard respawns"; cat "$SERVER3_OUT"; exit 1; }
[ -S "$SOCK3" ] && { echo "cluster router left its socket behind"; exit 1; }
[ -f "$JOURNAL3" ] || { echo "cluster leg: router journal missing"; exit 1; }
for i in 0 1 2; do
  [ -f "$JOURNAL3.shard$i" ] || { echo "cluster leg: shard $i journal missing"; exit 1; }
done

echo "serve-check OK: 3-shard cluster drained 8 clients x 25 txns to a clean exit"
