#!/usr/bin/env bash
# Networked front-end smoke check: serve the wire protocol on a Unix
# socket, drive it with 32 concurrent clients for a few thousand
# transactions, and assert a clean shutdown with zero protocol errors
# on both sides.
#
# The server's admitted work is deterministic given the admitted
# batches (asserted in-process by test/test_frontend.ml); this script
# checks the real-socket path: framing under concurrency, admission,
# checkpoint-gated replies, Bye/Shutdown draining, and exit codes.
set -euo pipefail
cd "$(dirname "$0")/.."

SOCK="${TMPDIR:-/tmp}/nvdb-serve-check-$$.sock"
SERVER_OUT="$(mktemp)"
CLIENT_OUT="$(mktemp)"
trap 'kill $SERVER_PID 2>/dev/null || true; rm -f "$SOCK" "$SERVER_OUT" "$CLIENT_OUT"' EXIT

dune build bin/nvdb.exe

NVDB=_build/default/bin/nvdb.exe

"$NVDB" serve --workload ycsb --listen "$SOCK" \
  --batch-target 128 --deadline-ticks 4 --capacity 20000 \
  >"$SERVER_OUT" 2>&1 &
SERVER_PID=$!

# Wait for the socket to appear (the server bulk-loads first).
for _ in $(seq 1 600); do
  [ -S "$SOCK" ] && break
  kill -0 "$SERVER_PID" 2>/dev/null || { echo "server died before binding"; cat "$SERVER_OUT"; exit 1; }
  sleep 0.1
done
[ -S "$SOCK" ] || { echo "server never bound $SOCK"; cat "$SERVER_OUT"; exit 1; }

"$NVDB" loadgen --workload ycsb --listen "$SOCK" \
  --clients 32 --txns 100 --window 4 --shutdown \
  >"$CLIENT_OUT" 2>&1 || { echo "loadgen failed"; cat "$CLIENT_OUT"; exit 1; }

# The Shutdown request must drain the server to a clean exit.
SERVER_RC=0
wait "$SERVER_PID" || SERVER_RC=$?
if [ "$SERVER_RC" -ne 0 ]; then
  echo "server exited with $SERVER_RC"; cat "$SERVER_OUT"; exit 1
fi

grep -q '^sent *3200$' "$CLIENT_OUT" || { echo "loadgen did not send 3200 txns"; cat "$CLIENT_OUT"; exit 1; }
grep -q '^protocol errors *0$' "$CLIENT_OUT" || { echo "client-side protocol errors"; cat "$CLIENT_OUT"; exit 1; }
grep -q '^protocol errors *0$' "$SERVER_OUT" || { echo "server-side protocol errors"; cat "$SERVER_OUT"; exit 1; }
grep -q '^admitted *3200$' "$SERVER_OUT" || { echo "server did not admit all 3200 txns"; cat "$SERVER_OUT"; exit 1; }
grep -q '^clients served *32$' "$SERVER_OUT" || { echo "server did not see 32 clients"; cat "$SERVER_OUT"; exit 1; }
[ -S "$SOCK" ] && { echo "server left its socket behind"; exit 1; }

echo "serve-check OK: 32 clients x 100 txns, clean shutdown, zero protocol errors"
sed -n 's/^/  server: /p' "$SERVER_OUT"
