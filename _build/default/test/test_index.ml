(* Index tests: hash index and ordered (AVL) index, against model
   hashtables/maps, plus qcheck properties. *)

module HIdx = Nv_index.Hash_index
module OIdx = Nv_index.Ordered_index
module BIdx = Nv_index.Btree_index

let stats () = Nv_nvmm.Stats.create Nv_nvmm.Memspec.default

let test_hash_basic () =
  let s = stats () in
  let h = HIdx.create () in
  HIdx.insert h s 1L "one";
  HIdx.insert h s 2L "two";
  Alcotest.(check (option string)) "find 1" (Some "one") (HIdx.find h s 1L);
  Alcotest.(check (option string)) "find 2" (Some "two") (HIdx.find h s 2L);
  Alcotest.(check (option string)) "find 3" None (HIdx.find h s 3L);
  HIdx.insert h s 1L "uno";
  Alcotest.(check (option string)) "replace" (Some "uno") (HIdx.find h s 1L);
  Alcotest.(check int) "length" 2 (HIdx.length h);
  HIdx.remove h s 1L;
  Alcotest.(check (option string)) "removed" None (HIdx.find h s 1L);
  Alcotest.(check int) "length after remove" 1 (HIdx.length h)

let test_hash_growth () =
  let s = stats () in
  let h = HIdx.create ~initial_capacity:8 () in
  for i = 0 to 9999 do
    HIdx.insert h s (Int64.of_int i) i
  done;
  Alcotest.(check int) "length" 10000 (HIdx.length h);
  for i = 0 to 9999 do
    match HIdx.find h s (Int64.of_int i) with
    | Some v when v = i -> ()
    | _ -> Alcotest.failf "lost key %d" i
  done

let test_hash_tombstone_churn () =
  let s = stats () in
  let h = HIdx.create ~initial_capacity:8 () in
  (* Insert/remove churn exercises tombstone handling. *)
  for round = 0 to 99 do
    for i = 0 to 49 do
      HIdx.insert h s (Int64.of_int i) (round * 100 + i)
    done;
    for i = 0 to 24 do
      HIdx.remove h s (Int64.of_int i)
    done
  done;
  Alcotest.(check int) "final length" 25 (HIdx.length h);
  Alcotest.(check (option int)) "survivor" (Some (99 * 100 + 30)) (HIdx.find h s 30L)

let prop_hash_matches_model =
  QCheck.Test.make ~name:"hash index matches model" ~count:100
    QCheck.(list (pair (int_range 0 50) bool))
    (fun ops ->
      let s = stats () in
      let h = HIdx.create ~initial_capacity:8 () in
      let model = Hashtbl.create 16 in
      List.iteri
        (fun i (k, ins) ->
          let k = Int64.of_int k in
          if ins then begin
            HIdx.insert h s k i;
            Hashtbl.replace model k i
          end
          else begin
            HIdx.remove h s k;
            Hashtbl.remove model k
          end)
        ops;
      Hashtbl.fold (fun k v acc -> acc && HIdx.find h s k = Some v) model true
      && HIdx.length h = Hashtbl.length model)

let test_ordered_basic () =
  let s = stats () in
  let o = OIdx.create () in
  List.iter (fun i -> OIdx.insert o s (Int64.of_int i) (i * 10)) [ 5; 1; 9; 3; 7 ];
  Alcotest.(check bool) "balanced" true (OIdx.check_balanced o);
  Alcotest.(check (option int)) "find" (Some 30) (OIdx.find o s 3L);
  OIdx.remove o s 3L;
  Alcotest.(check (option int)) "removed" None (OIdx.find o s 3L);
  Alcotest.(check bool) "still balanced" true (OIdx.check_balanced o);
  Alcotest.(check int) "length" 4 (OIdx.length o)

let test_ordered_range () =
  let s = stats () in
  let o = OIdx.create () in
  for i = 0 to 99 do
    OIdx.insert o s (Int64.of_int i) i
  done;
  let r = OIdx.fold_range o s ~lo:10L ~hi:20L ~init:[] ~f:(fun acc k _ -> k :: acc) in
  Alcotest.(check (list int64)) "range keys" (List.init 11 (fun i -> Int64.of_int (10 + i)))
    (List.rev r);
  Alcotest.(check (option (pair int64 int))) "max_below" (Some (42L, 42)) (OIdx.max_below o s 42L);
  Alcotest.(check (option (pair int64 int))) "min_above" (Some (43L, 43)) (OIdx.min_above o s 43L);
  Alcotest.(check (option (pair int64 int))) "max_below low" None (OIdx.max_below o s (-1L));
  Alcotest.(check (option (pair int64 int))) "min_above high" None (OIdx.min_above o s 1000L)

let prop_ordered_matches_sorted_model =
  QCheck.Test.make ~name:"ordered index sorted iteration" ~count:100
    QCheck.(list (int_range 0 1000))
    (fun keys ->
      let s = stats () in
      let o = OIdx.create () in
      List.iter (fun k -> OIdx.insert o s (Int64.of_int k) k) keys;
      let expect = List.sort_uniq compare (List.map Int64.of_int keys) in
      let got = ref [] in
      OIdx.iter o (fun k _ -> got := k :: !got);
      List.rev !got = expect && OIdx.check_balanced o)

let prop_ordered_delete_keeps_balance =
  QCheck.Test.make ~name:"ordered index delete keeps AVL invariant" ~count:100
    QCheck.(pair (list (int_range 0 200)) (list (int_range 0 200)))
    (fun (ins, del) ->
      let s = stats () in
      let o = OIdx.create () in
      List.iter (fun k -> OIdx.insert o s (Int64.of_int k) k) ins;
      List.iter (fun k -> OIdx.remove o s (Int64.of_int k)) del;
      let model =
        List.filter (fun k -> not (List.mem k del)) (List.sort_uniq compare ins)
      in
      let got = ref [] in
      OIdx.iter o (fun k _ -> got := k :: !got);
      List.rev !got = List.map Int64.of_int model && OIdx.check_balanced o)

(* --- B+-tree --- *)

let test_btree_basic () =
  let s = stats () in
  let b = BIdx.create () in
  List.iter (fun i -> BIdx.insert b s (Int64.of_int i) (i * 10)) [ 5; 1; 9; 3; 7 ];
  Alcotest.(check bool) "invariants" true (BIdx.check_invariants b);
  Alcotest.(check (option int)) "find" (Some 30) (BIdx.find b s 3L);
  Alcotest.(check (option int)) "miss" None (BIdx.find b s 4L);
  BIdx.insert b s 3L 333;
  Alcotest.(check (option int)) "replace" (Some 333) (BIdx.find b s 3L);
  Alcotest.(check int) "length" 5 (BIdx.length b);
  BIdx.remove b s 3L;
  Alcotest.(check (option int)) "removed" None (BIdx.find b s 3L);
  Alcotest.(check int) "length after remove" 4 (BIdx.length b);
  Alcotest.(check bool) "invariants after remove" true (BIdx.check_invariants b)

let test_btree_splits () =
  let s = stats () in
  let b = BIdx.create () in
  (* Far beyond one leaf / one inner node: forces multi-level splits. *)
  let n = 20_000 in
  for i = 0 to n - 1 do
    BIdx.insert b s (Int64.of_int ((i * 7919) mod n)) i
  done;
  Alcotest.(check bool) "invariants" true (BIdx.check_invariants b);
  Alcotest.(check int) "length" n (BIdx.length b);
  for i = 0 to n - 1 do
    if BIdx.find b s (Int64.of_int i) = None then Alcotest.failf "lost key %d" i
  done

let test_btree_range_and_bounds () =
  let s = stats () in
  let b = BIdx.create () in
  for i = 0 to 999 do
    BIdx.insert b s (Int64.of_int (i * 2)) i (* even keys *)
  done;
  let r = BIdx.fold_range b s ~lo:100L ~hi:120L ~init:[] ~f:(fun acc k _ -> k :: acc) in
  Alcotest.(check (list int64)) "range"
    [ 100L; 102L; 104L; 106L; 108L; 110L; 112L; 114L; 116L; 118L; 120L ]
    (List.rev r);
  Alcotest.(check (option (pair int64 int))) "max_below exact" (Some (100L, 50))
    (BIdx.max_below b s 100L);
  Alcotest.(check (option (pair int64 int))) "max_below odd" (Some (100L, 50))
    (BIdx.max_below b s 101L);
  Alcotest.(check (option (pair int64 int))) "min_above odd" (Some (102L, 51))
    (BIdx.min_above b s 101L);
  Alcotest.(check (option (pair int64 int))) "max_below under" None (BIdx.max_below b s (-1L));
  Alcotest.(check (option (pair int64 int))) "min_above over" None (BIdx.min_above b s 3000L)

let prop_btree_matches_model =
  QCheck.Test.make ~name:"btree matches model under churn" ~count:60
    QCheck.(list (pair (int_range 0 500) bool))
    (fun ops ->
      let s = stats () in
      let b = BIdx.create () in
      let model = Hashtbl.create 64 in
      List.iteri
        (fun i (k, ins) ->
          let k = Int64.of_int k in
          if ins then begin
            BIdx.insert b s k i;
            Hashtbl.replace model k i
          end
          else begin
            BIdx.remove b s k;
            Hashtbl.remove model k
          end)
        ops;
      BIdx.check_invariants b
      && BIdx.length b = Hashtbl.length model
      && Hashtbl.fold (fun k v acc -> acc && BIdx.find b s k = Some v) model true)

let prop_btree_agrees_with_avl =
  QCheck.Test.make ~name:"btree agrees with avl on range queries" ~count:40
    QCheck.(pair (list (int_range 0 300)) (pair (int_range 0 300) (int_range 0 300)))
    (fun (keys, (a, bnd)) ->
      let s = stats () in
      let bt = BIdx.create () and avl = OIdx.create () in
      List.iter
        (fun k ->
          BIdx.insert bt s (Int64.of_int k) k;
          OIdx.insert avl s (Int64.of_int k) k)
        keys;
      let lo = Int64.of_int (min a bnd) and hi = Int64.of_int (max a bnd) in
      let rb = BIdx.fold_range bt s ~lo ~hi ~init:[] ~f:(fun acc k _ -> k :: acc) in
      let ra = OIdx.fold_range avl s ~lo ~hi ~init:[] ~f:(fun acc k _ -> k :: acc) in
      rb = ra
      && BIdx.max_below bt s hi = OIdx.max_below avl s hi
      && BIdx.min_above bt s lo = OIdx.min_above avl s lo)

let suites =
  [
    ( "index",
      [
        Alcotest.test_case "hash basic" `Quick test_hash_basic;
        Alcotest.test_case "hash growth" `Quick test_hash_growth;
        Alcotest.test_case "hash tombstones" `Quick test_hash_tombstone_churn;
        QCheck_alcotest.to_alcotest prop_hash_matches_model;
        Alcotest.test_case "ordered basic" `Quick test_ordered_basic;
        Alcotest.test_case "ordered range" `Quick test_ordered_range;
        QCheck_alcotest.to_alcotest prop_ordered_matches_sorted_model;
        QCheck_alcotest.to_alcotest prop_ordered_delete_keeps_balance;
        Alcotest.test_case "btree basic" `Quick test_btree_basic;
        Alcotest.test_case "btree splits" `Quick test_btree_splits;
        Alcotest.test_case "btree ranges" `Quick test_btree_range_and_bounds;
        QCheck_alcotest.to_alcotest prop_btree_matches_model;
        QCheck_alcotest.to_alcotest prop_btree_agrees_with_avl;
      ] );
  ]
