(* Harness tests: the runner produces sane measurements at small scale
   and the headline orderings of the paper hold directionally. *)

module Runner = Nv_harness.Runner
module Config = Nvcaracal.Config
module Ycsb = Nv_workloads.Ycsb
module Smallbank = Nv_workloads.Smallbank
module Tpcc = Nv_workloads.Tpcc

let tiny_ycsb level =
  Ycsb.make
    (Ycsb.with_contention level { Ycsb.default with Ycsb.rows = 2000; hot_rows = 64 })

let tiny_smallbank level =
  Smallbank.make
    (Smallbank.with_contention level { Smallbank.default with Smallbank.customers = 2000 })

let setup = Runner.setup ~epochs:4 ~epoch_txns:300 ()

let test_runner_basics () =
  let r = Runner.run_nvcaracal setup (tiny_ycsb `Medium) ~variant:Config.Nvcaracal () in
  Alcotest.(check int) "txns" 1200 r.Runner.txns;
  Alcotest.(check int) "all committed" 1200 r.Runner.committed;
  Alcotest.(check bool) "time advanced" true (r.Runner.sim_seconds > 0.0);
  Alcotest.(check bool) "throughput positive" true (r.Runner.throughput > 0.0);
  Alcotest.(check bool) "logging recorded" true (r.Runner.log_bytes > 0);
  Alcotest.(check int) "epoch latencies" 4 (Nv_util.Histogram.count r.Runner.epoch_latency)

let test_variant_ordering () =
  let w = tiny_ycsb `High in
  let run variant = (Runner.run_nvcaracal setup w ~variant ()).Runner.throughput in
  let nv = run Config.Nvcaracal in
  let all_nvmm = run Config.All_nvmm in
  let all_dram = run Config.All_dram in
  Alcotest.(check bool) "all-NVMM slowest" true (all_nvmm < nv);
  Alcotest.(check bool) "all-DRAM fastest" true (nv < all_dram)

let test_zen_crossover () =
  (* Directional check of the Figure 5 shape at tiny scale: NVCaracal's
     advantage over Zen must grow with contention. *)
  let ratio level =
    let w = tiny_ycsb level in
    let nv = Runner.run_nvcaracal setup w ~variant:Config.Nvcaracal () in
    let zen = Runner.run_zen setup w () in
    nv.Runner.throughput /. zen.Runner.throughput
  in
  let low = ratio `Low and high = ratio `High in
  Alcotest.(check bool)
    (Printf.sprintf "advantage grows with contention (%.2f -> %.2f)" low high)
    true (high > low)

let test_transient_fraction_tracks_contention () =
  let frac level =
    (Runner.run_nvcaracal setup (tiny_ycsb level) ~variant:Config.Nvcaracal ())
      .Runner.transient_frac
  in
  Alcotest.(check bool) "low < high" true (frac `Low < frac `High)

let test_logging_overhead_sign () =
  let w = tiny_smallbank `Low in
  let nv = Runner.run_nvcaracal setup w ~variant:Config.Nvcaracal () in
  let nolog = Runner.run_nvcaracal setup w ~variant:Config.No_logging () in
  Alcotest.(check bool) "logging costs something" true
    (nolog.Runner.throughput >= nv.Runner.throughput)

let test_recovery_runs () =
  let w = tiny_smallbank `Low in
  let { Runner.report; _ } = Runner.run_recovery setup w ~crash_after_txns:200 () in
  Alcotest.(check bool) "scanned the dataset" true
    (report.Nvcaracal.Report.scanned_rows >= 4000);
  Alcotest.(check int) "replayed one epoch" 300 report.Nvcaracal.Report.replayed_txns

let test_tpcc_through_runner () =
  let w = Tpcc.make { Tpcc.default with Tpcc.warehouses = 1; customers_per_district = 10; items = 50 } in
  let setup = Runner.setup ~epochs:3 ~epoch_txns:200 ~insert_growth:15 () in
  let r = Runner.run_nvcaracal setup w ~variant:Config.Nvcaracal () in
  Alcotest.(check bool) "tpcc committed most txns" true (r.Runner.committed > 500);
  Alcotest.(check bool) "tpcc inserts grew NVMM" true
    (r.Runner.mem.Nvcaracal.Report.nvmm_rows > 0)

let test_experiment_registry () =
  Alcotest.(check int) "13 experiments" 13 (List.length Nv_harness.Experiments.all);
  (* Configuration tables print without running workloads. *)
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  List.iter
    (fun (id, _, run) ->
      if String.length id >= 5 && String.sub id 0 5 = "table" then run ppf)
    Nv_harness.Experiments.all;
  Format.pp_print_flush ppf ();
  Alcotest.(check bool) "tables render" true (Buffer.length buf > 200)

let test_fuzzer_clean () =
  let outcome = Nv_harness.Fuzzer.run ~seed:2024 ~iterations:8 () in
  Alcotest.(check (list string)) "no failures" [] outcome.Nv_harness.Fuzzer.failures;
  Alcotest.(check int) "all crashed" 8 outcome.Nv_harness.Fuzzer.crashes_injected;
  Alcotest.(check bool) "some replays" true (outcome.Nv_harness.Fuzzer.replays > 0)

let suites =
  [
    ( "harness",
      [
        Alcotest.test_case "runner basics" `Quick test_runner_basics;
        Alcotest.test_case "variant ordering" `Quick test_variant_ordering;
        Alcotest.test_case "zen crossover" `Quick test_zen_crossover;
        Alcotest.test_case "transient fraction" `Quick test_transient_fraction_tracks_contention;
        Alcotest.test_case "logging overhead" `Quick test_logging_overhead_sign;
        Alcotest.test_case "recovery runs" `Quick test_recovery_runs;
        Alcotest.test_case "tpcc runner" `Quick test_tpcc_through_runner;
        Alcotest.test_case "experiment registry" `Quick test_experiment_registry;
        Alcotest.test_case "fuzzer clean" `Slow test_fuzzer_clean;
      ] );
  ]
