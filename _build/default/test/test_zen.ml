(* Zen baseline tests: commit semantics, caching, deletion, recovery
   via double scan, and cost-profile contrasts with NVCaracal. *)

module Txn = Nvcaracal.Txn
module Table = Nvcaracal.Table
module Stats = Nv_nvmm.Stats

let tables = [ Table.make ~id:0 ~name:"t" () ]

let config =
  { Nv_zen.Zen_db.default_config with cores = 4; slots_per_core = 4096; cache_entries = 64 }

let update key data =
  Txn.make ~input:Bytes.empty ~write_set:[ Txn.Update { table = 0; key } ] (fun ctx ->
      ctx.Txn.Ctx.write ~table:0 ~key data)

let mk_db ?(n = 16) () =
  let db = Nv_zen.Zen_db.create ~config ~tables () in
  Nv_zen.Zen_db.bulk_load db
    (Seq.init n (fun i -> (0, Int64.of_int i, Bytes.of_string (Printf.sprintf "z%d" i))));
  db

let test_basic () =
  let db = mk_db () in
  Alcotest.(check (option string)) "loaded" (Some "z3")
    (Option.map Bytes.to_string (Nv_zen.Zen_db.read_committed db ~table:0 ~key:3L));
  Nv_zen.Zen_db.exec_batch db [| update 3L (Bytes.of_string "new") |];
  Alcotest.(check (option string)) "updated" (Some "new")
    (Option.map Bytes.to_string (Nv_zen.Zen_db.read_committed db ~table:0 ~key:3L));
  Alcotest.(check int) "committed" 1 (Nv_zen.Zen_db.committed_txns db)

let test_abort_discards () =
  let db = mk_db () in
  let aborter =
    Txn.make ~input:Bytes.empty ~write_set:[ Txn.Update { table = 0; key = 1L } ] (fun ctx ->
        ctx.Txn.Ctx.write ~table:0 ~key:1L (Bytes.of_string "never");
        ctx.Txn.Ctx.abort ())
  in
  Nv_zen.Zen_db.exec_batch db [| aborter |];
  Alcotest.(check int) "aborted" 1 (Nv_zen.Zen_db.aborted_txns db);
  Alcotest.(check (option string)) "unchanged" (Some "z1")
    (Option.map Bytes.to_string (Nv_zen.Zen_db.read_committed db ~table:0 ~key:1L))

let test_rmw_chain () =
  let db = mk_db () in
  let rmw key =
    Txn.make ~input:Bytes.empty ~write_set:[ Txn.Update { table = 0; key } ] (fun ctx ->
        match ctx.Txn.Ctx.read ~table:0 ~key with
        | Some v -> ctx.Txn.Ctx.write ~table:0 ~key (Bytes.cat v (Bytes.of_string "+"))
        | None -> failwith "missing")
  in
  Nv_zen.Zen_db.exec_batch db (Array.init 5 (fun _ -> rmw 2L));
  Alcotest.(check (option string)) "chained" (Some "z2+++++")
    (Option.map Bytes.to_string (Nv_zen.Zen_db.read_committed db ~table:0 ~key:2L))

let test_insert_delete () =
  let db = mk_db () in
  let ins =
    Txn.make ~input:Bytes.empty
      ~write_set:[ Txn.Insert { table = 0; key = 100L; data = Some (Bytes.of_string "fresh") } ]
      (fun _ -> ())
  in
  let del =
    Txn.make ~input:Bytes.empty ~write_set:[ Txn.Delete { table = 0; key = 100L } ] (fun ctx ->
        ctx.Txn.Ctx.delete ~table:0 ~key:100L)
  in
  Nv_zen.Zen_db.exec_batch db [| ins |];
  Alcotest.(check bool) "inserted" true (Nv_zen.Zen_db.read_committed db ~table:0 ~key:100L <> None);
  Nv_zen.Zen_db.exec_batch db [| del |];
  Alcotest.(check bool) "deleted" true (Nv_zen.Zen_db.read_committed db ~table:0 ~key:100L = None)

let test_every_update_hits_nvmm () =
  (* Zen's defining cost: N updates to one hot key = N NVMM record
     writes. NVCaracal in the same situation persists once. *)
  let db = mk_db () in
  let t0 = Nv_zen.Zen_db.total_time_ns db in
  Nv_zen.Zen_db.exec_batch db (Array.init 10 (fun _ -> update 1L (Bytes.of_string "hot")));
  Alcotest.(check bool) "time advanced" true (Nv_zen.Zen_db.total_time_ns db > t0);
  let m = Nv_zen.Zen_db.mem_report db in
  (* 16 loaded plus at least one fresh record per core before freed
     slots start being recycled. *)
  Alcotest.(check bool) "record churn" true
    (m.Nvcaracal.Report.nvmm_rows >= 17 * config.record_size)

let test_recovery_two_scans () =
  let db = mk_db ~n:32 () in
  Nv_zen.Zen_db.exec_batch db (Array.init 20 (fun i -> update (Int64.of_int (i mod 8)) (Bytes.make 8 'u')));
  let expected = ref [] in
  Nv_zen.Zen_db.iter_committed db ~table:0 (fun k v -> expected := (k, Bytes.to_string v) :: !expected);
  let db2, report = Nv_zen.Zen_db.recover ~config ~tables ~pmem:(Nv_zen.Zen_db.pmem db) () in
  let got = ref [] in
  Nv_zen.Zen_db.iter_committed db2 ~table:0 (fun k v -> got := (k, Bytes.to_string v) :: !got);
  Alcotest.(check bool) "state preserved" true
    (List.sort compare !expected = List.sort compare !got);
  Alcotest.(check int) "live rows" 32 report.Nv_zen.Zen_db.live_rows;
  (* Both scans cover the full arena capacity. *)
  Alcotest.(check int) "scans full arena" (config.cores * config.slots_per_core)
    report.Nv_zen.Zen_db.scanned_slots;
  Alcotest.(check bool) "two scan phases" true
    (report.Nv_zen.Zen_db.scan1_ns > 0.0 && report.Nv_zen.Zen_db.scan2_ns > 0.0);
  (* The recovered engine keeps working. *)
  Nv_zen.Zen_db.exec_batch db2 [| update 1L (Bytes.of_string "post") |];
  Alcotest.(check (option string)) "post-recovery update" (Some "post")
    (Option.map Bytes.to_string (Nv_zen.Zen_db.read_committed db2 ~table:0 ~key:1L))

(* The same transaction stream produces the same final state on both
   engines (Zen executes serially; NVCaracal's serial order is the
   batch order). *)
let test_same_final_state_as_nvcaracal () =
  let rng = Nv_util.Rng.create 99 in
  let batches =
    List.init 4 (fun _ ->
        Array.init 16 (fun _ ->
            let key = Int64.of_int (Nv_util.Rng.int rng 16) in
            update key (Bytes.of_string (Printf.sprintf "v%d" (Nv_util.Rng.int rng 1000)))))
  in
  let zen = mk_db () in
  List.iter (fun b -> Nv_zen.Zen_db.exec_batch zen b) batches;
  let nv_config =
    Nvcaracal.Config.make ~cores:4 ~rows_per_core:4096 ~values_per_core:4096
      ~freelist_capacity:4096 ()
  in
  let nv = Nvcaracal.Db.create ~config:nv_config ~tables () in
  Nvcaracal.Db.bulk_load nv
    (Seq.init 16 (fun i -> (0, Int64.of_int i, Bytes.of_string (Printf.sprintf "z%d" i))));
  List.iter (fun b -> ignore (Nvcaracal.Db.run_epoch nv b)) batches;
  let z = ref [] and n = ref [] in
  Nv_zen.Zen_db.iter_committed zen ~table:0 (fun k v -> z := (k, Bytes.to_string v) :: !z);
  Nvcaracal.Db.iter_committed nv ~table:0 (fun k v -> n := (k, Bytes.to_string v) :: !n);
  Alcotest.(check bool) "states agree" true (List.sort compare !z = List.sort compare !n)

let suites =
  [
    ( "zen",
      [
        Alcotest.test_case "basic" `Quick test_basic;
        Alcotest.test_case "abort discards" `Quick test_abort_discards;
        Alcotest.test_case "rmw chain" `Quick test_rmw_chain;
        Alcotest.test_case "insert/delete" `Quick test_insert_delete;
        Alcotest.test_case "every update hits NVMM" `Quick test_every_update_hits_nvmm;
        Alcotest.test_case "recovery two scans" `Quick test_recovery_two_scans;
        Alcotest.test_case "matches nvcaracal" `Quick test_same_final_state_as_nvcaracal;
      ] );
  ]
