test/test_partition.ml: Alcotest Array Bytes Config Db Int64 List Nv_util Nvcaracal Partition Printf Seq Table Txn
