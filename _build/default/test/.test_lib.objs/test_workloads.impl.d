test/test_workloads.ml: Alcotest Array Bytes Config Db Int64 List Nv_util Nv_workloads Nv_zen Nvcaracal Printf Report Table Txn
