test/test_core.ml: Alcotest Array Bytes Char Config Db Int64 List Nv_util Nvcaracal Option Printf Replication Report Seq Session String Table Test_recovery Txn
