test/test_nvmm.ml: Alcotest Bytes Hashtbl Int64 Nv_nvmm Nv_util Printf QCheck QCheck_alcotest
