test/test_util.ml: Alcotest Array Fun List Nv_util Option QCheck QCheck_alcotest
