test/test_storage.ml: Alcotest Bytes Hashtbl Int64 List Nv_nvmm Nv_storage Nv_util Printf QCheck QCheck_alcotest
