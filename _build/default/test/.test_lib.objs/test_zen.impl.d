test/test_zen.ml: Alcotest Array Bytes Int64 List Nv_nvmm Nv_util Nv_zen Nvcaracal Option Printf Seq
