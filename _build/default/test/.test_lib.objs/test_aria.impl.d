test/test_aria.ml: Alcotest Array Bytes Char Config Db Hashtbl Int64 List Nv_util Nvcaracal Option Printf QCheck QCheck_alcotest Report Seq String Table Txn
