test/test_harness.ml: Alcotest Buffer Format List Nv_harness Nv_util Nv_workloads Nvcaracal Printf String
