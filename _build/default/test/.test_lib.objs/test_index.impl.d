test/test_index.ml: Alcotest Hashtbl Int64 List Nv_index Nv_nvmm QCheck QCheck_alcotest
