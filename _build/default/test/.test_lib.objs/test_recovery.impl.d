test/test_recovery.ml: Alcotest Array Buffer Bytes Char Config Db Fun Hashtbl Int64 List Nv_nvmm Nv_util Nvcaracal Printf QCheck QCheck_alcotest Report Seq String Table Txn
