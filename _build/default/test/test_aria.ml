(* Aria-mode tests: snapshot execution with deterministic reservations
   (no pre-declared write sets), conflict deferral and retry, blind
   inserts, and crash recovery with Aria replay. *)

open Nvcaracal

let bytes_of_string = Bytes.of_string

let config =
  Config.make ~cores:4 ~crash_safe:true ~cache_k:3 ~rows_per_core:4096 ~values_per_core:4096
    ~freelist_capacity:4096 ()

let one_table = [ Table.make ~id:0 ~name:"t" () ]

let mk_db () =
  let db = Db.create ~config ~tables:one_table () in
  Db.bulk_load db
    (Seq.init 16 (fun i -> (0, Int64.of_int i, bytes_of_string (Printf.sprintf "v%d" i))));
  db

(* Aria transactions carry no write set. The input encodes (key, tag)
   so crashed epochs replay identically. *)
let encode key tag =
  let b = Bytes.create 9 in
  Bytes.set_int64_le b 0 key;
  Bytes.set b 8 tag;
  b

let txn_of_input input =
  let key = Bytes.get_int64_le input 0 in
  let tag = Bytes.get input 8 in
  Txn.make ~input ~write_set:[] (fun ctx ->
      let prev =
        match ctx.Txn.Ctx.read ~table:0 ~key with Some v -> Bytes.to_string v | None -> ""
      in
      ctx.Txn.Ctx.write ~table:0 ~key (bytes_of_string (prev ^ String.make 1 tag)))

let rmw key tag = txn_of_input (encode key tag)

let committed db key =
  Option.map Bytes.to_string (Db.read_committed db ~table:0 ~key)

let test_aria_disjoint_batch () =
  let db = mk_db () in
  let stats, deferred =
    Db.run_epoch_aria db [| rmw 1L 'a'; rmw 2L 'b'; rmw 3L 'c' |]
  in
  Alcotest.(check int) "none deferred" 0 (Array.length deferred);
  Alcotest.(check int) "no aborts" 0 stats.Report.aborted;
  Alcotest.(check (option string)) "k1" (Some "v1a") (committed db 1L);
  Alcotest.(check (option string)) "k2" (Some "v2b") (committed db 2L);
  Alcotest.(check (option string)) "k3" (Some "v3c") (committed db 3L)

let test_aria_conflicts_defer () =
  let db = mk_db () in
  (* Three RMWs of the same key: only the first can commit; the other
     two read a key the first wrote. *)
  let stats, deferred = Db.run_epoch_aria db [| rmw 1L 'a'; rmw 1L 'b'; rmw 1L 'c' |] in
  Alcotest.(check int) "two deferred" 2 (Array.length deferred);
  Alcotest.(check int) "aborted counted" 2 stats.Report.aborted;
  Alcotest.(check (option string)) "first writer won" (Some "v1a") (committed db 1L);
  (* Retrying drains the queue deterministically. *)
  let rec drain batch rounds =
    if Array.length batch = 0 then rounds
    else begin
      let _, d = Db.run_epoch_aria db batch in
      drain d (rounds + 1)
    end
  in
  let rounds = drain deferred 0 in
  Alcotest.(check int) "two retry rounds" 2 rounds;
  Alcotest.(check (option string)) "all applied in order" (Some "v1abc") (committed db 1L)

let test_aria_snapshot_reads () =
  let db = mk_db () in
  let seen = ref None in
  let reader =
    Txn.make ~input:Bytes.empty ~write_set:[] (fun ctx ->
        seen := ctx.Txn.Ctx.read ~table:0 ~key:1L)
  in
  (* The reader has a LARGER sid than the writer, yet sees the snapshot
     (Aria), where Caracal would have shown it the new value. The
     reader still commits: read-only transactions conflict only if the
     read key was written, which it was — so it defers. *)
  let _, deferred = Db.run_epoch_aria db [| rmw 1L 'z'; reader |] in
  Alcotest.(check (option string)) "snapshot read" (Some "v1")
    (Option.map Bytes.to_string !seen);
  Alcotest.(check int) "reader deferred (RAW)" 1 (Array.length deferred);
  let _, d2 = Db.run_epoch_aria db deferred in
  Alcotest.(check int) "reader commits on retry" 0 (Array.length d2);
  Alcotest.(check (option string)) "retry saw new value" (Some "v1z")
    (Option.map Bytes.to_string !seen)

let test_aria_blind_insert () =
  let db = mk_db () in
  let ins =
    Txn.make ~input:Bytes.empty ~write_set:[] (fun ctx ->
        ctx.Txn.Ctx.write ~table:0 ~key:500L (bytes_of_string "fresh"))
  in
  let _, deferred = Db.run_epoch_aria db [| ins |] in
  Alcotest.(check int) "committed" 0 (Array.length deferred);
  Alcotest.(check (option string)) "inserted" (Some "fresh") (committed db 500L)

let test_aria_user_abort () =
  let db = mk_db () in
  let aborter =
    Txn.make ~input:Bytes.empty ~write_set:[] (fun ctx ->
        ctx.Txn.Ctx.write ~table:0 ~key:1L (bytes_of_string "never");
        ctx.Txn.Ctx.abort ())
  in
  let stats, deferred = Db.run_epoch_aria db [| aborter |] in
  Alcotest.(check int) "user abort is final" 0 (Array.length deferred);
  Alcotest.(check int) "aborted" 1 stats.Report.aborted;
  Alcotest.(check (option string)) "no write applied" (Some "v1") (committed db 1L)

let test_aria_deterministic () =
  let run () =
    let db = mk_db () in
    let rng = Nv_util.Rng.create 31 in
    let all_deferred = ref 0 in
    for _ = 1 to 4 do
      let batch =
        Array.init 24 (fun _ ->
            rmw
              (Int64.of_int (Nv_util.Rng.int rng 8))
              (Char.chr (Char.code 'a' + Nv_util.Rng.int rng 26)))
      in
      let _, deferred = Db.run_epoch_aria db batch in
      all_deferred := !all_deferred + Array.length deferred
    done;
    let out = ref [] in
    Db.iter_committed db ~table:0 (fun k v -> out := (k, Bytes.to_string v) :: !out);
    (!all_deferred, List.sort compare !out)
  in
  Alcotest.(check bool) "identical runs" true (run () = run ())

let test_aria_crash_recovery () =
  let db = mk_db () in
  let batch seed =
    let rng = Nv_util.Rng.create seed in
    Array.init 20 (fun _ ->
        rmw
          (Int64.of_int (Nv_util.Rng.int rng 10))
          (Char.chr (Char.code 'a' + Nv_util.Rng.int rng 26)))
  in
  ignore (Db.run_epoch_aria db (batch 1));
  ignore (Db.run_epoch_aria db (batch 2));
  (* Oracle: same epochs, no crash. *)
  let oracle = mk_db () in
  ignore (Db.run_epoch_aria oracle (batch 1));
  ignore (Db.run_epoch_aria oracle (batch 2));
  ignore (Db.run_epoch_aria oracle (batch 3));
  (* Crash mid-apply of epoch 4 (= batch 3). *)
  let exception Crash_now in
  Db.set_phase_hook db (fun p -> if p = Db.Exec_txn 15 then raise Crash_now);
  (try ignore (Db.run_epoch_aria db (batch 3)) with Crash_now -> ());
  let pmem = Db.crash db ~rng:(Nv_util.Rng.create 7) in
  let db2, report =
    Db.recover ~config ~tables:one_table ~pmem ~rebuild:txn_of_input ~replay_mode:`Aria ()
  in
  Alcotest.(check int) "replayed" 20 report.Report.replayed_txns;
  let state d =
    let out = ref [] in
    Db.iter_committed d ~table:0 (fun k v -> out := (k, Bytes.to_string v) :: !out);
    List.sort compare !out
  in
  Alcotest.(check bool) "recovered state equals oracle" true (state db2 = state oracle)

let test_aria_transient_collapse () =
  (* Many buffered writes to the same key by ONE transaction collapse
     into one persistent write — the paper's final-write insight holds
     in Aria mode too. *)
  let db = mk_db () in
  let multi =
    Txn.make ~input:Bytes.empty ~write_set:[] (fun ctx ->
        for k = 0 to 9 do
          ctx.Txn.Ctx.write ~table:0 ~key:1L (bytes_of_string (Printf.sprintf "w%d" k))
        done)
  in
  let stats, _ = Db.run_epoch_aria db [| multi |] in
  Alcotest.(check int) "ten version writes" 10 stats.Report.version_writes;
  Alcotest.(check int) "one persistent write" 1 stats.Report.persistent_writes;
  Alcotest.(check (option string)) "last wins" (Some "w9") (committed db 1L)

(* Property: the committed set is exactly a deterministic conflict-free
   prefix-respecting subset, and the final state equals applying the
   committed transactions' buffered writes in serial order to the
   snapshot. *)
let prop_aria_matches_model =
  QCheck.Test.make ~name:"aria commit set matches reservation model" ~count:50
    QCheck.(pair (int_range 1 10_000) (int_range 1 30))
    (fun (seed, n) ->
      let db = mk_db () in
      let rng = Nv_util.Rng.create seed in
      let ops =
        Array.init n (fun _ ->
            ( Int64.of_int (Nv_util.Rng.int rng 6),
              Char.chr (Char.code 'a' + Nv_util.Rng.int rng 26) ))
      in
      let batch = Array.map (fun (k, c) -> rmw k c) ops in
      let _, deferred = Db.run_epoch_aria db batch in
      (* Model: reservations = min writer index per key (RMW reads and
         writes the same key, so conflict = an earlier writer exists). *)
      let reserved = Hashtbl.create 8 in
      Array.iteri
        (fun i (k, _) -> if not (Hashtbl.mem reserved k) then Hashtbl.add reserved k i)
        ops;
      let committed_model = Hashtbl.create 8 in
      Array.iteri
        (fun i (k, c) -> if Hashtbl.find reserved k = i then Hashtbl.replace committed_model k c)
        ops;
      let expected_deferred =
        Array.to_list ops
        |> List.filteri (fun i _ -> Hashtbl.find reserved (fst ops.(i)) <> i)
        |> List.length
      in
      let state_ok =
        Hashtbl.fold
          (fun k c acc ->
            acc
            && committed db k = Some (Printf.sprintf "v%Ld%c" k c))
          committed_model true
      in
      Array.length deferred = expected_deferred && state_ok)

let suites =
  [
    ( "aria",
      [
        Alcotest.test_case "disjoint batch" `Quick test_aria_disjoint_batch;
        Alcotest.test_case "conflicts defer" `Quick test_aria_conflicts_defer;
        Alcotest.test_case "snapshot reads" `Quick test_aria_snapshot_reads;
        Alcotest.test_case "blind insert" `Quick test_aria_blind_insert;
        Alcotest.test_case "user abort" `Quick test_aria_user_abort;
        Alcotest.test_case "deterministic" `Quick test_aria_deterministic;
        Alcotest.test_case "crash recovery" `Quick test_aria_crash_recovery;
        Alcotest.test_case "transient collapse" `Quick test_aria_transient_collapse;
        QCheck_alcotest.to_alcotest prop_aria_matches_model;
      ] );
  ]
