(* Utility-layer tests: RNG determinism, Zipf shape, histogram
   percentiles, priority-queue ordering, hash properties. *)

let test_rng_determinism () =
  let a = Nv_util.Rng.create 42 and b = Nv_util.Rng.create 42 in
  for _ = 1 to 1000 do
    Alcotest.(check int64) "same stream" (Nv_util.Rng.next_int64 a) (Nv_util.Rng.next_int64 b)
  done

let test_rng_split_independent () =
  let a = Nv_util.Rng.create 42 in
  let c = Nv_util.Rng.split a in
  let x = Nv_util.Rng.next_int64 a and y = Nv_util.Rng.next_int64 c in
  Alcotest.(check bool) "split streams differ" true (x <> y)

let test_rng_bounds () =
  let rng = Nv_util.Rng.create 1 in
  for _ = 1 to 10000 do
    let v = Nv_util.Rng.int rng 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17);
    let w = Nv_util.Rng.int_in rng 5 9 in
    Alcotest.(check bool) "in closed range" true (w >= 5 && w <= 9);
    let f = Nv_util.Rng.float rng in
    Alcotest.(check bool) "unit float" true (f >= 0.0 && f < 1.0)
  done

let test_rng_uniformity () =
  let rng = Nv_util.Rng.create 9 in
  let buckets = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let i = Nv_util.Rng.int rng 10 in
    buckets.(i) <- buckets.(i) + 1
  done;
  Array.iter
    (fun c ->
      let expected = n / 10 in
      Alcotest.(check bool) "within 5% of uniform" true (abs (c - expected) < expected / 20))
    buckets

let test_shuffle_permutes () =
  let rng = Nv_util.Rng.create 5 in
  let a = Array.init 100 Fun.id in
  Nv_util.Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 100 Fun.id) sorted

let test_zipf_skew () =
  let z = Nv_util.Zipf.create ~n:10_000 ~theta:0.99 in
  let rng = Nv_util.Rng.create 77 in
  let top10 = ref 0 and n = 50_000 in
  for _ = 1 to n do
    let r = Nv_util.Zipf.sample z rng in
    Alcotest.(check bool) "rank in range" true (r >= 0 && r < 10_000);
    if r < 10 then incr top10
  done;
  (* With theta = 0.99 over 10k items, the top-10 ranks draw roughly a
     quarter of the mass; uniform would give 0.1%. *)
  Alcotest.(check bool) "skewed towards head" true (float_of_int !top10 /. float_of_int n > 0.15)

let test_zipf_uniform_degenerate () =
  let z = Nv_util.Zipf.create ~n:100 ~theta:0.0 in
  let rng = Nv_util.Rng.create 3 in
  let buckets = Array.make 100 0 in
  for _ = 1 to 100_000 do
    buckets.(Nv_util.Zipf.sample z rng) <- buckets.(Nv_util.Zipf.sample z rng) + 1
  done;
  let max_b = Array.fold_left max 0 buckets and min_b = Array.fold_left min max_int buckets in
  Alcotest.(check bool) "roughly uniform" true (float_of_int max_b /. float_of_int min_b < 2.0)

let test_histogram_basic () =
  let h = Nv_util.Histogram.create () in
  for i = 1 to 1000 do
    Nv_util.Histogram.add h (float_of_int i)
  done;
  Alcotest.(check int) "count" 1000 (Nv_util.Histogram.count h);
  Alcotest.(check bool) "mean near 500" true (abs_float (Nv_util.Histogram.mean h -. 500.5) < 1.0);
  let p50 = Nv_util.Histogram.percentile h 50.0 in
  Alcotest.(check bool) "p50 within bucket error" true (p50 > 400.0 && p50 < 620.0);
  let p99 = Nv_util.Histogram.percentile h 99.0 in
  Alcotest.(check bool) "p99 near max" true (p99 > 900.0 && p99 <= 1000.0)

let test_histogram_merge () =
  let a = Nv_util.Histogram.create () and b = Nv_util.Histogram.create () in
  Nv_util.Histogram.add a 10.0;
  Nv_util.Histogram.add b 20.0;
  let m = Nv_util.Histogram.merge a b in
  Alcotest.(check int) "merged count" 2 (Nv_util.Histogram.count m);
  Alcotest.(check (float 0.01)) "merged mean" 15.0 (Nv_util.Histogram.mean m)

let test_pqueue_ordering () =
  let q = Nv_util.Pqueue.create () in
  let rng = Nv_util.Rng.create 11 in
  let items = List.init 500 (fun i -> (Nv_util.Rng.float rng, i)) in
  List.iter (fun (p, v) -> Nv_util.Pqueue.push q ~prio:p v) items;
  Alcotest.(check int) "size" 500 (Nv_util.Pqueue.size q);
  let rec drain last acc =
    match Nv_util.Pqueue.peek_prio q with
    | None -> acc
    | Some p ->
        Alcotest.(check bool) "non-decreasing" true (p >= last);
        ignore (Nv_util.Pqueue.pop q);
        drain p (acc + 1)
  in
  Alcotest.(check int) "drained all" 500 (drain neg_infinity 0)

let test_pqueue_fifo_ties () =
  let q = Nv_util.Pqueue.create () in
  List.iter (fun v -> Nv_util.Pqueue.push q ~prio:1.0 v) [ 1; 2; 3; 4 ];
  let order = List.init 4 (fun _ -> Option.get (Nv_util.Pqueue.pop q)) in
  Alcotest.(check (list int)) "ties pop in insertion order" [ 1; 2; 3; 4 ] order

let prop_fnv_nonnegative =
  QCheck.Test.make ~name:"fnv hashes are non-negative" ~count:1000 QCheck.int64 (fun k ->
      Nv_util.Fnv.hash_int64 k >= 0)

let prop_fnv_deterministic =
  QCheck.Test.make ~name:"fnv deterministic" ~count:1000 QCheck.string (fun s ->
      Nv_util.Fnv.hash_string s = Nv_util.Fnv.hash_string s)

let prop_pqueue_sorted =
  QCheck.Test.make ~name:"pqueue pops sorted" ~count:100
    QCheck.(list (float_bound_exclusive 1.0))
    (fun prios ->
      let q = Nv_util.Pqueue.create () in
      List.iteri (fun i p -> Nv_util.Pqueue.push q ~prio:p i) prios;
      let rec drain acc =
        match Nv_util.Pqueue.peek_prio q with
        | None -> List.rev acc
        | Some p ->
            ignore (Nv_util.Pqueue.pop q);
            drain (p :: acc)
      in
      let out = drain [] in
      out = List.sort compare prios)

let suites =
  [
    ( "util",
      [
        Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
        Alcotest.test_case "rng split" `Quick test_rng_split_independent;
        Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
        Alcotest.test_case "rng uniformity" `Quick test_rng_uniformity;
        Alcotest.test_case "shuffle permutes" `Quick test_shuffle_permutes;
        Alcotest.test_case "zipf skew" `Quick test_zipf_skew;
        Alcotest.test_case "zipf uniform" `Quick test_zipf_uniform_degenerate;
        Alcotest.test_case "histogram basic" `Quick test_histogram_basic;
        Alcotest.test_case "histogram merge" `Quick test_histogram_merge;
        Alcotest.test_case "pqueue ordering" `Quick test_pqueue_ordering;
        Alcotest.test_case "pqueue fifo ties" `Quick test_pqueue_fifo_ties;
        QCheck_alcotest.to_alcotest prop_fnv_nonnegative;
        QCheck_alcotest.to_alcotest prop_fnv_deterministic;
        QCheck_alcotest.to_alcotest prop_pqueue_sorted;
      ] );
  ]
