(* Workload tests: each benchmark runs end-to-end on the engine,
   rebuild (log decode) reproduces transactions, and TPC-C's
   crash-recovery path (counter checkpointing + revert) matches a
   crash-free oracle run. *)

open Nvcaracal
module W = Nv_workloads.Workload
module Ycsb = Nv_workloads.Ycsb
module Smallbank = Nv_workloads.Smallbank
module Tpcc = Nv_workloads.Tpcc

let small_ycsb =
  Ycsb.with_contention `Medium { Ycsb.default with Ycsb.rows = 500; hot_rows = 16 }

let small_smallbank =
  { Smallbank.default with Smallbank.customers = 400; hot_customers = 20 }

let small_tpcc =
  { Tpcc.default with Tpcc.warehouses = 2; customers_per_district = 10; items = 50 }

let config_for (w : W.t) ~crash_safe =
  Config.make ~cores:4 ~crash_safe ~rows_per_core:32768 ~values_per_core:8192
    ~freelist_capacity:16384 ~n_counters:w.W.n_counters
    ~revert_on_recovery:w.W.revert_on_recovery ~log_capacity:(1 lsl 20) ()

let mk_db ?(crash_safe = false) (w : W.t) =
  let db = Db.create ~config:(config_for w ~crash_safe) ~tables:w.W.tables () in
  Db.bulk_load db (w.W.load ());
  db

let state db (w : W.t) =
  List.concat_map
    (fun (tb : Table.t) ->
      let out = ref [] in
      Db.iter_committed db ~table:tb.Table.id (fun k v ->
          out := (tb.Table.id, k, Bytes.to_string v) :: !out);
      List.sort compare !out)
    w.W.tables

let run_epochs db (w : W.t) ~seed ~epochs ~txns =
  let rng = Nv_util.Rng.create seed in
  let total_aborted = ref 0 in
  for _ = 1 to epochs do
    let stats = Db.run_epoch db (w.W.gen_batch rng txns) in
    total_aborted := !total_aborted + stats.Report.aborted
  done;
  !total_aborted

let test_ycsb_runs () =
  let w = Ycsb.make small_ycsb in
  let db = mk_db w in
  let aborted = run_epochs db w ~seed:1 ~epochs:5 ~txns:50 in
  Alcotest.(check int) "no aborts in ycsb" 0 aborted;
  Alcotest.(check int) "all committed" 250 (Db.committed_txns db)

let test_ycsb_deterministic () =
  let w = Ycsb.make small_ycsb in
  let db1 = mk_db w and db2 = mk_db w in
  ignore (run_epochs db1 w ~seed:7 ~epochs:3 ~txns:40);
  ignore (run_epochs db2 w ~seed:7 ~epochs:3 ~txns:40);
  Alcotest.(check bool) "same state" true (state db1 w = state db2 w)

let test_ycsb_rebuild_roundtrip () =
  let w = Ycsb.make small_ycsb in
  let rng = Nv_util.Rng.create 3 in
  let batch = w.W.gen_batch rng 20 in
  (* Applying the original batch and the rebuilt batch must produce the
     same state. *)
  let db1 = mk_db w and db2 = mk_db w in
  ignore (Db.run_epoch db1 batch);
  ignore (Db.run_epoch db2 (Array.map (fun (t : Txn.t) -> w.W.rebuild t.Txn.input) batch));
  Alcotest.(check bool) "rebuild equivalent" true (state db1 w = state db2 w)

let test_ycsb_contention_increases_transient () =
  let run level =
    let w = Ycsb.make (Ycsb.with_contention level { Ycsb.default with Ycsb.rows = 2000 }) in
    let db = mk_db w in
    let rng = Nv_util.Rng.create 5 in
    let stats = Db.run_epoch db (w.W.gen_batch rng 400) in
    Report.transient_fraction stats
  in
  let low = run `Low and high = run `High in
  Alcotest.(check bool)
    (Printf.sprintf "transient fraction rises with contention (%.2f < %.2f)" low high)
    true (low < high)

let test_ycsb_zipfian_skew () =
  (* Zipfian key selection concentrates writes: the transient fraction
     must exceed the uniform distribution's on the same table. *)
  let run dist =
    let w =
      Ycsb.make { small_ycsb with Ycsb.hot_per_txn = 0; distribution = dist; rows = 2000 }
    in
    let db = mk_db w in
    let rng = Nv_util.Rng.create 5 in
    let stats = Db.run_epoch db (w.W.gen_batch rng 400) in
    Report.transient_fraction stats
  in
  let uniform = run Ycsb.Hotspot (* hot_per_txn = 0 means uniform *) in
  let zipf = run (Ycsb.Zipfian 0.99) in
  Alcotest.(check bool)
    (Printf.sprintf "zipf more transient (%.2f > %.2f)" zipf uniform)
    true (zipf > uniform)

let test_smallbank_runs_and_aborts () =
  let w = Smallbank.make small_smallbank in
  let db = mk_db w in
  let aborted = run_epochs db w ~seed:11 ~epochs:10 ~txns:100 in
  (* Two of five types abort at ~10%: expect ~4% overall. *)
  let rate = float_of_int aborted /. 1000.0 in
  Alcotest.(check bool) (Printf.sprintf "abort rate ~4-10%% (got %.1f%%)" (rate *. 100.)) true
    (rate > 0.005 && rate < 0.15)

let test_smallbank_no_negative_savings () =
  (* Checking may overdraw (WriteCheck penalty path); savings never go
     negative because TransactSavings aborts first. *)
  let w = Smallbank.make small_smallbank in
  let db = mk_db w in
  ignore (run_epochs db w ~seed:13 ~epochs:10 ~txns:100);
  Db.iter_committed db ~table:Smallbank.savings_table (fun k v ->
      let bal = Bytes.get_int64_le v 0 in
      if Int64.compare bal 0L < 0 then
        Alcotest.failf "negative savings %Ld for customer %Ld" bal k)

let test_smallbank_rebuild_roundtrip () =
  let w = Smallbank.make small_smallbank in
  let rng = Nv_util.Rng.create 17 in
  let batch = w.W.gen_batch rng 50 in
  let db1 = mk_db w and db2 = mk_db w in
  ignore (Db.run_epoch db1 batch);
  ignore (Db.run_epoch db2 (Array.map (fun (t : Txn.t) -> w.W.rebuild t.Txn.input) batch));
  Alcotest.(check bool) "rebuild equivalent" true (state db1 w = state db2 w)

let test_tpcc_runs () =
  let w = Tpcc.make small_tpcc in
  let db = mk_db w in
  ignore (run_epochs db w ~seed:19 ~epochs:8 ~txns:60);
  (* NewOrders inserted orders; some were delivered. *)
  let orders = ref 0 and undelivered = ref 0 and delivered = ref 0 in
  Db.iter_committed db ~table:Tpcc.order_t (fun _ v ->
      incr orders;
      if Bytes.get_int64_le v 16 >= 0L then incr delivered);
  Db.iter_committed db ~table:Tpcc.new_order_t (fun _ _ -> incr undelivered);
  Alcotest.(check bool) "orders placed" true (!orders > 50);
  Alcotest.(check bool) "some delivered" true (!delivered > 0);
  Alcotest.(check int) "undelivered = orders - delivered" (!orders - !delivered) !undelivered

let test_tpcc_order_lines_consistent () =
  let w = Tpcc.make small_tpcc in
  let db = mk_db w in
  ignore (run_epochs db w ~seed:23 ~epochs:6 ~txns:50);
  (* Every committed order has exactly ol_cnt order lines. *)
  Db.iter_committed db ~table:Tpcc.order_t (fun key order ->
      let ol_cnt = Int64.to_int (Bytes.get_int64_le order 8) in
      let code = Int64.shift_right_logical key 32 in
      let o = Int64.to_int (Int64.logand key 0xFFFFFFFFL) in
      let w_id = Int64.to_int code / 10 and d = Int64.to_int code mod 10 in
      let found = ref 0 in
      for line = 0 to ol_cnt - 1 do
        if Db.read_committed db ~table:Tpcc.order_line_t
             ~key:(Tpcc.order_line_key ~w:w_id ~d ~o ~line) <> None
        then incr found
      done;
      Alcotest.(check int) (Printf.sprintf "lines of order %Ld" key) ol_cnt !found)

let test_tpcc_crash_recovery_matches_oracle () =
  (* Crash TPC-C mid-epoch; recovery (with counter restore + revert of
     crashed-epoch writes) must land in the same state as a crash-free
     run of the same batches. *)
  let w = Tpcc.make small_tpcc in
  let seed = 29 in
  let epochs_before = 3 and txns = 40 in
  let batches rng n = List.init n (fun _ -> w.W.gen_batch rng txns) in
  let rng1 = Nv_util.Rng.create seed in
  let all = batches rng1 (epochs_before + 1) in
  (* Oracle run. *)
  let oracle = mk_db w in
  List.iter (fun b -> ignore (Db.run_epoch oracle b)) all;
  (* Crash run. *)
  let db = mk_db ~crash_safe:true w in
  List.iteri (fun i b -> if i < epochs_before then ignore (Db.run_epoch db b)) all;
  let exception Crash_now in
  Db.set_phase_hook db (fun p -> if p = Db.Exec_txn 25 then raise Crash_now);
  (try ignore (Db.run_epoch db (List.nth all epochs_before)) with Crash_now -> ());
  let pmem = Db.crash db ~rng:(Nv_util.Rng.create 31) in
  let db2, report =
    Db.recover
      ~config:(config_for w ~crash_safe:true)
      ~tables:w.W.tables ~pmem ~rebuild:w.W.rebuild ()
  in
  Alcotest.(check int) "replayed" txns report.Report.replayed_txns;
  Alcotest.(check bool) "state equals oracle" true (state db2 w = state oracle w)

let test_tpcc_rebuild_roundtrip () =
  let w = Tpcc.make small_tpcc in
  let rng = Nv_util.Rng.create 37 in
  let batch = w.W.gen_batch rng 50 in
  let db1 = mk_db w and db2 = mk_db w in
  ignore (Db.run_epoch db1 batch);
  ignore (Db.run_epoch db2 (Array.map (fun (t : Txn.t) -> w.W.rebuild t.Txn.input) batch));
  Alcotest.(check bool) "rebuild equivalent" true (state db1 w = state db2 w)

let test_zen_runs_ycsb_and_smallbank () =
  (* The paper's Zen comparison covers YCSB and SmallBank. *)
  List.iter
    (fun (w : W.t) ->
      let config =
        {
          Nv_zen.Zen_db.default_config with
          cores = 4;
          slots_per_core = 32768;
          record_size = 1088;
          cache_entries = 256;
        }
      in
      let db = Nv_zen.Zen_db.create ~config ~tables:w.W.tables () in
      Nv_zen.Zen_db.bulk_load db (w.W.load ());
      let rng = Nv_util.Rng.create 41 in
      for _ = 1 to 3 do
        Nv_zen.Zen_db.exec_batch db (w.W.gen_batch rng 50)
      done;
      Alcotest.(check bool)
        (w.W.name ^ " committed on zen")
        true
        (Nv_zen.Zen_db.committed_txns db > 100))
    [ Ycsb.make small_ycsb; Smallbank.make small_smallbank ]

let suites =
  [
    ( "workloads",
      [
        Alcotest.test_case "ycsb runs" `Quick test_ycsb_runs;
        Alcotest.test_case "ycsb deterministic" `Quick test_ycsb_deterministic;
        Alcotest.test_case "ycsb rebuild" `Quick test_ycsb_rebuild_roundtrip;
        Alcotest.test_case "ycsb contention->transient" `Quick
          test_ycsb_contention_increases_transient;
        Alcotest.test_case "ycsb zipfian skew" `Quick test_ycsb_zipfian_skew;
        Alcotest.test_case "smallbank aborts" `Quick test_smallbank_runs_and_aborts;
        Alcotest.test_case "smallbank balances" `Quick test_smallbank_no_negative_savings;
        Alcotest.test_case "smallbank rebuild" `Quick test_smallbank_rebuild_roundtrip;
        Alcotest.test_case "tpcc runs" `Quick test_tpcc_runs;
        Alcotest.test_case "tpcc order lines" `Quick test_tpcc_order_lines_consistent;
        Alcotest.test_case "tpcc crash recovery" `Quick test_tpcc_crash_recovery_matches_oracle;
        Alcotest.test_case "tpcc rebuild" `Quick test_tpcc_rebuild_roundtrip;
        Alcotest.test_case "zen runs workloads" `Quick test_zen_runs_ycsb_and_smallbank;
      ] );
  ]
