(* NVMM simulator tests: accessors, persistence semantics, crash
   images, cost charging. *)

module Pmem = Nv_nvmm.Pmem
module Stats = Nv_nvmm.Stats
module Memspec = Nv_nvmm.Memspec
module Layout = Nv_nvmm.Layout

let stats () = Stats.create Memspec.default

let test_accessors () =
  let p = Pmem.create ~size:4096 () in
  Pmem.set_i64 p 0 0x1122334455667788L;
  Alcotest.(check int64) "i64 roundtrip" 0x1122334455667788L (Pmem.get_i64 p 0);
  Pmem.set_i32 p 8 0x0BADF00Dl;
  Alcotest.(check int32) "i32 roundtrip" 0x0BADF00Dl (Pmem.get_i32 p 8);
  Pmem.set_u8 p 12 0xAB;
  Alcotest.(check int) "u8 roundtrip" 0xAB (Pmem.get_u8 p 12);
  Pmem.write_bytes p ~off:100 (Bytes.of_string "hello");
  Alcotest.(check string) "bytes roundtrip" "hello"
    (Bytes.to_string (Pmem.read_bytes p ~off:100 ~len:5))

let test_bounds_checked () =
  let p = Pmem.create ~size:64 () in
  Alcotest.check_raises "oob write"
    (Invalid_argument "Pmem: range [64, 72) out of bounds (size 8)") (fun () ->
      Pmem.set_i64 p 64 0L)

let test_crash_discards_unflushed () =
  let s = stats () in
  let p = Pmem.create ~mode:Pmem.Crash_safe ~size:4096 () in
  Pmem.set_i64 p 0 42L;
  (* no flush, no fence *)
  Pmem.crash_with p ~choose:(fun ~line:_ ~options:_ -> 0);
  Alcotest.(check int64) "unflushed store lost" 0L (Pmem.get_i64 p 0);
  (* flushed + fenced survives the harshest adversary *)
  Pmem.set_i64 p 0 43L;
  Pmem.persist p s ~off:0 ~len:8;
  Pmem.set_i64 p 8 99L;
  Pmem.crash_with p ~choose:(fun ~line:_ ~options:_ -> 0);
  Alcotest.(check int64) "persisted store kept" 43L (Pmem.get_i64 p 0);
  Alcotest.(check int64) "same-line later store lost" 0L (Pmem.get_i64 p 8)

let test_crash_may_keep_everything () =
  let p = Pmem.create ~mode:Pmem.Crash_safe ~size:4096 () in
  Pmem.set_i64 p 0 7L;
  Pmem.set_i64 p 128 8L;
  Pmem.crash_all_persisted p;
  Alcotest.(check int64) "kept 0" 7L (Pmem.get_i64 p 0);
  Alcotest.(check int64) "kept 128" 8L (Pmem.get_i64 p 128)

let test_crash_prefix_consistency () =
  (* Two stores to the same line: the crash image may hold neither, the
     first only, or both — never the second without the first. *)
  let observations = Hashtbl.create 4 in
  for seed = 1 to 200 do
    let p = Pmem.create ~mode:Pmem.Crash_safe ~size:4096 () in
    Pmem.set_i64 p 0 1L;
    Pmem.set_i64 p 8 2L;
    Pmem.crash p ~rng:(Nv_util.Rng.create seed);
    let a = Pmem.get_i64 p 0 and b = Pmem.get_i64 p 8 in
    Hashtbl.replace observations (a, b) ();
    Alcotest.(check bool)
      (Printf.sprintf "legal prefix state (%Ld, %Ld)" a b)
      true
      (match (a, b) with (0L, 0L) | (1L, 0L) | (1L, 2L) -> true | _ -> false)
  done;
  (* Over many seeds, all three legal states appear. *)
  Alcotest.(check int) "all prefixes observed" 3 (Hashtbl.length observations)

let test_fence_clears_dirty () =
  let s = stats () in
  let p = Pmem.create ~mode:Pmem.Crash_safe ~size:4096 () in
  Pmem.set_i64 p 0 1L;
  Pmem.set_i64 p 256 2L;
  Alcotest.(check int) "two dirty lines" 2 (Pmem.dirty_line_count p);
  Pmem.flush p s ~off:0 ~len:8;
  Pmem.fence p s;
  Alcotest.(check int) "one dirty line after fence" 1 (Pmem.dirty_line_count p);
  Pmem.flush p s ~off:256 ~len:8;
  Pmem.fence p s;
  Alcotest.(check int) "clean" 0 (Pmem.dirty_line_count p)

let test_flush_without_fence_not_durable () =
  let s = stats () in
  let p = Pmem.create ~mode:Pmem.Crash_safe ~size:4096 () in
  Pmem.set_i64 p 0 5L;
  Pmem.flush p s ~off:0 ~len:8;
  (* no fence: adversary may drop it *)
  Pmem.crash_with p ~choose:(fun ~line:_ ~options:_ -> 0);
  Alcotest.(check int64) "flushed-unfenced may be lost" 0L (Pmem.get_i64 p 0)

let test_store_after_flush () =
  let s = stats () in
  let p = Pmem.create ~mode:Pmem.Crash_safe ~size:4096 () in
  Pmem.set_i64 p 0 1L;
  Pmem.flush p s ~off:0 ~len:8;
  Pmem.set_i64 p 0 2L;
  Pmem.fence p s;
  (* The fence persists the clwb capture (value 1); value 2 is still
     volatile. *)
  Pmem.crash_with p ~choose:(fun ~line:_ ~options:_ -> 0);
  Alcotest.(check int64) "capture-time content persisted" 1L (Pmem.get_i64 p 0)

let test_fast_mode_rejects_crash () =
  let p = Pmem.create ~size:64 () in
  Alcotest.check_raises "crash rejected" (Invalid_argument "Pmem.crash: region is in Fast mode")
    (fun () -> Pmem.crash p ~rng:(Nv_util.Rng.create 1))

let test_charging () =
  let s = stats () in
  let p = Pmem.create ~size:4096 () in
  Pmem.charge_read p s ~off:0 ~len:256;
  Pmem.charge_write p s ~off:0 ~len:1;
  Pmem.charge_write p s ~off:255 ~len:2 (* straddles two blocks *);
  let c = Stats.counters s in
  Alcotest.(check int) "one block read" 1 c.Stats.nvmm_block_reads;
  Alcotest.(check int) "three block writes" 3 c.Stats.nvmm_block_writes

let test_stats_clock () =
  let s = stats () in
  let spec = Memspec.default in
  Stats.dram_read s ();
  Alcotest.(check (float 0.001)) "dram read time" spec.Memspec.dram_read_ns (Stats.now s);
  Stats.nvmm_write s ~off:0 ~len:256;
  Alcotest.(check (float 0.001)) "nvmm write adds"
    (spec.Memspec.dram_read_ns +. spec.Memspec.nvmm_write_block_ns)
    (Stats.now s);
  Stats.set_now s 1.0;
  Alcotest.(check bool) "set_now never rewinds" true (Stats.now s > 1.0)

let test_blocks_touched () =
  let spec = Memspec.default in
  Alcotest.(check int) "empty" 0 (Memspec.blocks_touched spec ~off:0 ~len:0);
  Alcotest.(check int) "within" 1 (Memspec.blocks_touched spec ~off:10 ~len:100);
  Alcotest.(check int) "exact" 1 (Memspec.blocks_touched spec ~off:256 ~len:256);
  Alcotest.(check int) "straddle" 2 (Memspec.blocks_touched spec ~off:200 ~len:100);
  Alcotest.(check int) "big" 5 (Memspec.blocks_touched spec ~off:100 ~len:1024)

let test_layout () =
  let b = Layout.builder () in
  let r1 = Layout.reserve b ~name:"a" ~len:100 () in
  let r2 = Layout.reserve b ~name:"b" ~len:50 ~align:64 () in
  Alcotest.(check int) "first at 0" 0 r1.Layout.off;
  Alcotest.(check int) "aligned" 0 (r2.Layout.off mod 64);
  Alcotest.(check bool) "non-overlapping" true (r2.Layout.off >= 100);
  Alcotest.(check string) "find" "b" (Layout.find b "b").Layout.name;
  Alcotest.(check bool) "total covers" true (Layout.total_size b >= r2.Layout.off + 50)

(* Property: any sequence of stores/flushes/fences followed by a crash
   yields, per line, one of the snapshots that existed — checked by
   writing a monotone counter and requiring the crash value to be one
   of the written values or the initial zero. *)
let prop_crash_value_was_written =
  QCheck.Test.make ~name:"crash image holds a written value" ~count:200
    QCheck.(pair (int_range 1 20) (int_range 1 1_000_000))
    (fun (n_stores, seed) ->
      let s = stats () in
      let p = Pmem.create ~mode:Pmem.Crash_safe ~size:256 () in
      let rng = Nv_util.Rng.create seed in
      for i = 1 to n_stores do
        Pmem.set_i64 p 0 (Int64.of_int i);
        if Nv_util.Rng.int rng 3 = 0 then Pmem.flush p s ~off:0 ~len:8;
        if Nv_util.Rng.int rng 4 = 0 then Pmem.fence p s
      done;
      Pmem.crash p ~rng;
      let v = Int64.to_int (Pmem.get_i64 p 0) in
      v >= 0 && v <= n_stores)

let suites =
  [
    ( "nvmm",
      [
        Alcotest.test_case "accessors" `Quick test_accessors;
        Alcotest.test_case "bounds" `Quick test_bounds_checked;
        Alcotest.test_case "crash discards unflushed" `Quick test_crash_discards_unflushed;
        Alcotest.test_case "crash may keep all" `Quick test_crash_may_keep_everything;
        Alcotest.test_case "prefix consistency" `Quick test_crash_prefix_consistency;
        Alcotest.test_case "fence clears dirty" `Quick test_fence_clears_dirty;
        Alcotest.test_case "flush alone not durable" `Quick test_flush_without_fence_not_durable;
        Alcotest.test_case "store after flush" `Quick test_store_after_flush;
        Alcotest.test_case "fast mode no crash" `Quick test_fast_mode_rejects_crash;
        Alcotest.test_case "charging" `Quick test_charging;
        Alcotest.test_case "stats clock" `Quick test_stats_clock;
        Alcotest.test_case "blocks touched" `Quick test_blocks_touched;
        Alcotest.test_case "layout" `Quick test_layout;
        QCheck_alcotest.to_alcotest prop_crash_value_was_written;
      ] );
  ]
