(* Crash-recovery tests: a deterministic mini-workload drives the
   engine, a pure-OCaml model predicts the committed state, and crashes
   are injected at every phase of an epoch. After [Db.crash] +
   [Db.recover], the database must equal the model state of all
   committed epochs (including the replayed one whenever the input log
   committed before the crash). *)

open Nvcaracal

(* ------------------------------------------------------------------ *)
(* Mini-workload: serializable ops with a binary codec for the log.    *)

type mop =
  | Set of { key : int64; len : int; tag : char }  (* read-modify-write *)
  | Ins of { key : int64; len : int; tag : char }
  | Del of { key : int64 }
  | AbortAfterRead of { key : int64 }

let value ~len ~tag = Bytes.make len tag

let encode_ops ops =
  let buf = Buffer.create 64 in
  Buffer.add_uint8 buf (List.length ops);
  List.iter
    (fun op ->
      let add tag key len c =
        Buffer.add_uint8 buf tag;
        Buffer.add_int64_le buf key;
        Buffer.add_uint16_le buf len;
        Buffer.add_char buf c
      in
      match op with
      | Set { key; len; tag } -> add 0 key len tag
      | Ins { key; len; tag } -> add 1 key len tag
      | Del { key } -> add 2 key 0 ' '
      | AbortAfterRead { key } -> add 3 key 0 ' ')
    ops;
  Buffer.to_bytes buf

let decode_ops b =
  let n = Char.code (Bytes.get b 0) in
  let pos = ref 1 in
  List.init n (fun _ ->
      let tag = Char.code (Bytes.get b !pos) in
      let key = Bytes.get_int64_le b (!pos + 1) in
      let len = Bytes.get_uint16_le b (!pos + 9) in
      let c = Bytes.get b (!pos + 11) in
      pos := !pos + 12;
      match tag with
      | 0 -> Set { key; len; tag = c }
      | 1 -> Ins { key; len; tag = c }
      | 2 -> Del { key }
      | 3 -> AbortAfterRead { key }
      | _ -> assert false)

let txn_of_ops ops =
  let write_set =
    List.filter_map
      (function
        | Set { key; _ } -> Some (Txn.Update { table = 0; key })
        | Ins { key; len; tag } ->
            Some (Txn.Insert { table = 0; key; data = Some (value ~len ~tag) })
        | Del { key } -> Some (Txn.Delete { table = 0; key })
        | AbortAfterRead _ -> None)
      ops
  in
  Txn.make ~input:(encode_ops ops) ~write_set (fun ctx ->
      List.iter
        (fun op ->
          match op with
          | Set { key; len; tag } ->
              ignore (ctx.Txn.Ctx.read ~table:0 ~key);
              ctx.Txn.Ctx.write ~table:0 ~key (value ~len ~tag)
          | Ins _ -> () (* data supplied at the insert step *)
          | Del { key } -> ctx.Txn.Ctx.delete ~table:0 ~key
          | AbortAfterRead { key } ->
              ignore (ctx.Txn.Ctx.read ~table:0 ~key);
              ctx.Txn.Ctx.abort ())
        ops)

let rebuild input = txn_of_ops (decode_ops input)

(* ------------------------------------------------------------------ *)
(* Deterministic batch generation plus the reference model.            *)

let initial_keys = 24
let epoch_txns = 16

(* The model applies a batch exactly as the serial order dictates. *)
let model_apply model batch =
  Array.iter
    (fun ops ->
      List.iter
        (fun op ->
          match op with
          | Set { key; len; tag } -> Hashtbl.replace model key (value ~len ~tag)
          | Ins { key; len; tag } -> Hashtbl.replace model key (value ~len ~tag)
          | Del { key } -> Hashtbl.remove model key
          | AbortAfterRead _ -> ())
        ops)
    batch

(* Generate the batch for [epoch] from a per-epoch RNG stream. The
   generator consults [model]-alive keys as of the previous epoch and
   avoids inserting keys that still exist or deleting keys twice. *)
let gen_batch ~seed ~epoch model =
  let rng = Nv_util.Rng.create (seed + (1000 * epoch)) in
  let alive = Hashtbl.fold (fun k _ acc -> k :: acc) model [] in
  let alive = Array.of_list (List.sort compare alive) in
  let deleted = Hashtbl.create 8 in
  let inserted = Hashtbl.create 8 in
  let fresh_key = ref (Int64.of_int (1000 + (epoch * 100))) in
  Array.init epoch_txns (fun _ ->
      let n_ops = 1 + Nv_util.Rng.int rng 3 in
      let pick_alive () =
        if Array.length alive = 0 then None
        else
          let k = Nv_util.Rng.pick rng alive in
          if Hashtbl.mem deleted k then None else Some k
      in
      (* User aborts must precede the transaction's first write, so an
         aborting transaction carries only reads. *)
      if Nv_util.Rng.int rng 10 = 0 then
        match pick_alive () with Some key -> [ AbortAfterRead { key } ] | None -> []
      else
        List.filter_map
          (fun _ ->
            let len = if Nv_util.Rng.bool rng then 16 else 200 in
            let tag = Char.chr (Char.code 'a' + Nv_util.Rng.int rng 26) in
            match Nv_util.Rng.int rng 9 with
            | 0 ->
                let key = !fresh_key in
                fresh_key := Int64.add key 1L;
                Hashtbl.replace inserted key ();
                Some (Ins { key; len; tag })
            | 1 -> (
                match pick_alive () with
                | Some key when not (Hashtbl.mem inserted key) ->
                    Hashtbl.replace deleted key ();
                    Some (Del { key })
                | Some _ | None -> None)
            | _ -> (
                match pick_alive () with
                | Some key -> Some (Set { key; len; tag })
                | None -> None))
          (List.init n_ops Fun.id))

let load_rows =
  Seq.init initial_keys (fun i ->
      (0, Int64.of_int i, value ~len:(if i mod 2 = 0 then 16 else 200) ~tag:'0'))

let model_load () =
  let model = Hashtbl.create 64 in
  Seq.iter (fun (_, k, v) -> Hashtbl.replace model k v) load_rows;
  model

let tables = [ Table.make ~id:0 ~name:"t" () ]

let test_config =
  Config.make ~cores:4 ~crash_safe:true ~cache_k:3 ~rows_per_core:2048 ~values_per_core:2048
    ~freelist_capacity:2048 ()

let pindex_config =
  Config.make ~cores:4 ~crash_safe:true ~cache_k:3 ~rows_per_core:2048 ~values_per_core:2048
    ~freelist_capacity:2048 ~persistent_index:true ~pindex_capacity:512 ()

let db_state db =
  let out = ref [] in
  Db.iter_committed db ~table:0 (fun k v -> out := (k, Bytes.to_string v) :: !out);
  List.sort compare !out

let model_state model =
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, Bytes.to_string v) :: acc) model [])

let check_states_equal what model db =
  let ms = model_state model and ds = db_state db in
  if ms <> ds then begin
    let pp l =
      String.concat "; "
        (List.map
           (fun (k, v) -> Printf.sprintf "%Ld=%c(%d)" k (if v = "" then '?' else v.[0]) (String.length v))
           l)
    in
    Alcotest.failf "%s:\n model: %s\n db:    %s" what (pp ms) (pp ds)
  end

(* ------------------------------------------------------------------ *)
(* Tests                                                               *)

let test_determinism_no_crash () =
  let db = Db.create ~config:test_config ~tables () in
  Db.bulk_load db load_rows;
  let model = model_load () in
  let seed = 42 in
  for epoch = 2 to 6 do
    let batch = gen_batch ~seed ~epoch model in
    ignore (Db.run_epoch db (Array.map txn_of_ops batch));
    model_apply model batch;
    check_states_equal (Printf.sprintf "epoch %d" epoch) model db
  done

exception Crash_now

(* Run [crash_epoch - 1] clean epochs, then crash epoch [crash_epoch]
   at [phase]; recover and check against the model. *)
let run_crash_scenario ?(config = test_config) ~seed ~crash_epoch ~phase_pred ~crash_seed () =
  let db = Db.create ~config ~tables () in
  Db.bulk_load db load_rows;
  let model = model_load () in
  for epoch = 2 to crash_epoch - 1 do
    let batch = gen_batch ~seed ~epoch model in
    ignore (Db.run_epoch db (Array.map txn_of_ops batch));
    model_apply model batch
  done;
  let crash_batch = gen_batch ~seed ~epoch:crash_epoch model in
  let log_committed = ref false in
  Db.set_phase_hook db (fun phase ->
      if phase = Db.Log_done then log_committed := true;
      if phase_pred phase then raise Crash_now);
  let completed =
    try
      ignore (Db.run_epoch db (Array.map txn_of_ops crash_batch));
      true
    with Crash_now -> false
  in
  let pmem = Db.crash db ~rng:(Nv_util.Rng.create crash_seed) in
  let db2, report = Db.recover ~config ~tables ~pmem ~rebuild () in
  (* The crashed epoch counts iff its input log committed (or the epoch
     completed entirely). *)
  if completed || !log_committed then model_apply model crash_batch;
  check_states_equal "post-recovery" model db2;
  (* The recovered database keeps working. *)
  let next = gen_batch ~seed ~epoch:(crash_epoch + 1) model in
  ignore (Db.run_epoch db2 (Array.map txn_of_ops next));
  model_apply model next;
  check_states_equal "post-recovery epoch" model db2;
  report

let phase_cases =
  [
    ("after log", fun p -> p = Db.Log_done);
    ("after insert step", fun p -> p = Db.Insert_done);
    ("after GC pass 1", fun p -> p = Db.Gc_pass1_done);
    ("after GC", fun p -> p = Db.Gc_done);
    ("after append step", fun p -> p = Db.Append_done);
    ("mid-execution (txn 3)", fun p -> p = Db.Exec_txn 3);
    ("mid-execution (txn 11)", fun p -> p = Db.Exec_txn 11);
    ("after execution", fun p -> p = Db.Exec_done);
    ("after checkpoint", fun p -> p = Db.Checkpointed);
  ]

let crash_phase_tests =
  List.map
    (fun (name, pred) ->
      Alcotest.test_case ("crash " ^ name) `Quick (fun () ->
          List.iter
            (fun crash_seed ->
              ignore (run_crash_scenario ~seed:7 ~crash_epoch:4 ~phase_pred:pred ~crash_seed ()))
            [ 1; 2; 3 ]))
    phase_cases

(* The same crash matrix with the persistent NVMM index enabled: the
   lazy recovery path (section 7 future work) must be state-equivalent
   to the eager scan. *)
let pindex_crash_phase_tests =
  List.map
    (fun (name, pred) ->
      Alcotest.test_case ("pindex crash " ^ name) `Quick (fun () ->
          List.iter
            (fun crash_seed ->
              ignore
                (run_crash_scenario ~config:pindex_config ~seed:7 ~crash_epoch:4
                   ~phase_pred:pred ~crash_seed ()))
            [ 1; 2 ]))
    phase_cases

let test_pindex_recovery_faster_scan () =
  (* With the persistent index, recovery reads the bucket table instead
     of block-reading every row: the scan component shrinks. *)
  let run config =
    (run_crash_scenario ~config ~seed:5 ~crash_epoch:4
       ~phase_pred:(fun p -> p = Db.Exec_txn 8)
       ~crash_seed:1 ())
      .Report.scan_ns
  in
  let eager = run test_config and lazy_scan = run pindex_config in
  Alcotest.(check bool)
    (Printf.sprintf "pindex scan faster (%.0f < %.0f ns)" lazy_scan eager)
    true (lazy_scan < eager)

let test_pindex_survives_many_epochs_after_recovery () =
  (* Lazily-recovered rows are touched (and their stale versions
     collected) over many later epochs; state must stay equivalent to
     the model throughout. *)
  let db = Db.create ~config:pindex_config ~tables () in
  Db.bulk_load db load_rows;
  let model = model_load () in
  let seed = 77 in
  for epoch = 2 to 3 do
    let batch = gen_batch ~seed ~epoch model in
    ignore (Db.run_epoch db (Array.map txn_of_ops batch));
    model_apply model batch
  done;
  let crash_batch = gen_batch ~seed ~epoch:4 model in
  Db.set_phase_hook db (fun p -> if p = Db.Exec_txn 10 then raise Crash_now);
  (try ignore (Db.run_epoch db (Array.map txn_of_ops crash_batch)) with Crash_now -> ());
  let pmem = Db.crash db ~rng:(Nv_util.Rng.create 13) in
  let db2, _ = Db.recover ~config:pindex_config ~tables ~pmem ~rebuild () in
  model_apply model crash_batch;
  for epoch = 5 to 10 do
    let batch = gen_batch ~seed ~epoch model in
    ignore (Db.run_epoch db2 (Array.map txn_of_ops batch));
    model_apply model batch;
    check_states_equal (Printf.sprintf "post-lazy-recovery epoch %d" epoch) model db2
  done

let test_crash_before_any_epoch () =
  (* Crash right after load: recovery must restore the loaded state. *)
  let db = Db.create ~config:test_config ~tables () in
  Db.bulk_load db load_rows;
  let model = model_load () in
  let pmem = Db.crash db ~rng:(Nv_util.Rng.create 5) in
  let db2, report = Db.recover ~config:test_config ~tables ~pmem ~rebuild () in
  check_states_equal "post-load recovery" model db2;
  Alcotest.(check int) "nothing replayed" 0 report.Report.replayed_txns

let test_recovery_report_shape () =
  let report =
    run_crash_scenario ~seed:11 ~crash_epoch:3
      ~phase_pred:(fun p -> p = Db.Exec_txn 9)
      ~crash_seed:9 ()
  in
  Alcotest.(check bool) "rows scanned" true (report.Report.scanned_rows >= initial_keys / 2);
  Alcotest.(check int) "replayed the epoch" epoch_txns report.Report.replayed_txns;
  Alcotest.(check bool) "total covers scan" true
    (report.Report.scan_ns > 0.0 && report.Report.total_ns > report.Report.scan_ns)

let test_double_crash () =
  (* Crash, recover, crash again immediately: the second recovery must
     be idempotent. *)
  let db = Db.create ~config:test_config ~tables () in
  Db.bulk_load db load_rows;
  let model = model_load () in
  let seed = 23 in
  for epoch = 2 to 3 do
    let batch = gen_batch ~seed ~epoch model in
    ignore (Db.run_epoch db (Array.map txn_of_ops batch));
    model_apply model batch
  done;
  let crash_batch = gen_batch ~seed ~epoch:4 model in
  Db.set_phase_hook db (fun p -> if p = Db.Exec_txn 8 then raise Crash_now);
  (try ignore (Db.run_epoch db (Array.map txn_of_ops crash_batch)) with Crash_now -> ());
  let pmem = Db.crash db ~rng:(Nv_util.Rng.create 31) in
  let db2, _ = Db.recover ~config:test_config ~tables ~pmem ~rebuild () in
  model_apply model crash_batch;
  check_states_equal "first recovery" model db2;
  let pmem2 = Db.crash db2 ~rng:(Nv_util.Rng.create 37) in
  let db3, report = Db.recover ~config:test_config ~tables ~pmem:pmem2 ~rebuild () in
  Alcotest.(check int) "no replay needed" 0 report.Report.replayed_txns;
  check_states_equal "second recovery" model db3

let test_revert_on_recovery_mode () =
  (* With revert_on_recovery, crashed-epoch persistent writes are nulled
     during the scan and replay rebuilds them; final state unchanged. *)
  let config = { test_config with Config.revert_on_recovery = true } in
  let db = Db.create ~config ~tables () in
  Db.bulk_load db load_rows;
  let model = model_load () in
  let seed = 51 in
  let batch2 = gen_batch ~seed ~epoch:2 model in
  ignore (Db.run_epoch db (Array.map txn_of_ops batch2));
  model_apply model batch2;
  let crash_batch = gen_batch ~seed ~epoch:3 model in
  Db.set_phase_hook db (fun p -> if p = Db.Exec_done then raise Crash_now);
  (try ignore (Db.run_epoch db (Array.map txn_of_ops crash_batch)) with Crash_now -> ());
  let pmem = Db.crash db ~rng:(Nv_util.Rng.create 3) in
  let db2, report = Db.recover ~config ~tables ~pmem ~rebuild () in
  model_apply model crash_batch;
  Alcotest.(check bool) "some rows reverted" true (report.Report.reverted_rows > 0);
  check_states_equal "revert-mode recovery" model db2

let test_pindex_ordered_table () =
  (* Lazy recovery must rebuild ordered indexes too (range scans work
     right after recovery, before any row state is loaded). *)
  let tables = [ Table.make ~id:0 ~name:"ord" ~index:Table.Ordered () ] in
  let config = pindex_config in
  let db = Db.create ~config ~tables () in
  Db.bulk_load db
    (Seq.init 24 (fun i -> (0, Int64.of_int (i * 10), value ~len:16 ~tag:'o')));
  let upd key tag = txn_of_ops [ Set { key; len = 16; tag } ] in
  ignore (Db.run_epoch db [| upd 40L 'a'; upd 90L 'b' |]);
  Db.set_phase_hook db (fun p -> if p = Db.Exec_txn 0 then raise Crash_now);
  (try ignore (Db.run_epoch db [| upd 50L 'c' |]) with Crash_now -> ());
  let pmem = Db.crash db ~rng:(Nv_util.Rng.create 2) in
  let db2, _ = Db.recover ~config ~tables ~pmem ~rebuild () in
  (* Range read through a transaction exercises the ordered index over
     lazily-recovered rows. *)
  let seen = ref [] in
  let reader =
    Txn.make ~input:(encode_ops []) ~write_set:[] (fun ctx ->
        seen := ctx.Txn.Ctx.range_read ~table:0 ~lo:35L ~hi:95L)
  in
  ignore (Db.run_epoch db2 [| reader |]);
  Alcotest.(check (list (pair int64 string)))
    "range over lazy rows"
    [
      (40L, String.make 16 'a'); (50L, String.make 16 'c'); (60L, String.make 16 'o');
      (70L, String.make 16 'o'); (80L, String.make 16 'o'); (90L, String.make 16 'b');
    ]
    (List.map (fun (k, v) -> (k, Bytes.to_string v)) !seen)

(* Crash DURING the replay itself, possibly repeatedly: recovery must
   be idempotent under repeated failures at arbitrary points. *)
let test_crash_during_replay () =
  List.iter
    (fun config ->
      let db = Db.create ~config ~tables () in
      Db.bulk_load db load_rows;
      let model = model_load () in
      let seed = 61 in
      for epoch = 2 to 3 do
        let batch = gen_batch ~seed ~epoch model in
        ignore (Db.run_epoch db (Array.map txn_of_ops batch));
        model_apply model batch
      done;
      let crash_batch = gen_batch ~seed ~epoch:4 model in
      Db.set_phase_hook db (fun p -> if p = Db.Exec_txn 9 then raise Crash_now);
      (try ignore (Db.run_epoch db (Array.map txn_of_ops crash_batch)) with Crash_now -> ());
      model_apply model crash_batch;
      (* Recovery attempt 1 dies mid-replay; attempt 2 dies during its
         replay's GC; attempt 3 completes. *)
      let pmem = ref (Db.crash db ~rng:(Nv_util.Rng.create 3)) in
      let attempt phase_pred crash_seed =
        match
          Db.recover ~config ~tables ~pmem:!pmem ~rebuild
            ~phase_hook:(fun p -> if phase_pred p then raise Crash_now)
            ()
        with
        | db2, _ -> Ok db2
        | exception Crash_now ->
            (* The half-recovered engine's region is still tracked; tear
               it again. The Db handle is unusable, but the pmem object
               is the same one we passed in. *)
            Nv_nvmm.Pmem.crash !pmem ~rng:(Nv_util.Rng.create crash_seed);
            Error ()
      in
      (match attempt (fun p -> p = Db.Exec_txn 12) 5 with
      | Ok _ -> Alcotest.fail "expected crash during first recovery"
      | Error () -> ());
      (match attempt (fun p -> p = Db.Gc_done) 7 with
      | Ok _ -> Alcotest.fail "expected crash during second recovery"
      | Error () -> ());
      match attempt (fun _ -> false) 0 with
      | Error () -> Alcotest.fail "third recovery should complete"
      | Ok db2 ->
          check_states_equal "after three-fold crash recovery" model db2;
          (* And the database still works. *)
          let next = gen_batch ~seed ~epoch:5 model in
          ignore (Db.run_epoch db2 (Array.map txn_of_ops next));
          model_apply model next;
          check_states_equal "post-triple-crash epoch" model db2)
    [ test_config; pindex_config ]

(* Property: for random seeds, crash epochs, phases and crash images,
   recovery always reproduces the model state. *)
let prop_recovery_equivalence =
  QCheck.Test.make ~name:"recovery equivalence (random crash point)" ~count:30
    QCheck.(
      quad (int_range 1 10_000) (int_range 2 5)
        (int_range 0 (List.length phase_cases - 1))
        (int_range 1 10_000))
    (fun (seed, crash_epoch, phase_idx, crash_seed) ->
      let _, pred = List.nth phase_cases phase_idx in
      ignore (run_crash_scenario ~seed ~crash_epoch ~phase_pred:pred ~crash_seed ());
      true)

let prop_pindex_recovery_equivalence =
  QCheck.Test.make ~name:"pindex recovery equivalence (random crash point)" ~count:15
    QCheck.(
      quad (int_range 1 10_000) (int_range 2 5)
        (int_range 0 (List.length phase_cases - 1))
        (int_range 1 10_000))
    (fun (seed, crash_epoch, phase_idx, crash_seed) ->
      let _, pred = List.nth phase_cases phase_idx in
      ignore
        (run_crash_scenario ~config:pindex_config ~seed ~crash_epoch ~phase_pred:pred
           ~crash_seed ());
      true)

let suites =
  [
    ( "recovery",
      [
        Alcotest.test_case "determinism (no crash)" `Quick test_determinism_no_crash;
        Alcotest.test_case "crash after load" `Quick test_crash_before_any_epoch;
        Alcotest.test_case "recovery report" `Quick test_recovery_report_shape;
        Alcotest.test_case "double crash" `Quick test_double_crash;
        Alcotest.test_case "revert-on-recovery mode" `Quick test_revert_on_recovery_mode;
      ]
      @ crash_phase_tests @ pindex_crash_phase_tests
      @ [
          Alcotest.test_case "pindex scan faster" `Quick test_pindex_recovery_faster_scan;
          Alcotest.test_case "pindex long-run equivalence" `Quick
            test_pindex_survives_many_epochs_after_recovery;
          Alcotest.test_case "pindex ordered table" `Quick test_pindex_ordered_table;
          Alcotest.test_case "crash during replay (x3)" `Quick test_crash_during_replay;
          QCheck_alcotest.to_alcotest prop_recovery_equivalence;
          QCheck_alcotest.to_alcotest prop_pindex_recovery_equivalence;
        ] );
  ]
