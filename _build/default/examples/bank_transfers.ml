(* Bank transfers: a SmallBank-style scenario showing multi-key
   transactions, user-level aborts, and the transient-write advantage
   under contention — the paper's motivating effect.

     dune exec examples/bank_transfers.exe *)

open Nvcaracal

let checking = 0
let savings = 1
let accounts = 5_000
let hot = 50

let balance_bytes v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 v;
  b

let balance_of b = Bytes.get_int64_le b 0

(* Move money between two accounts; aborts (before any write) if the
   source lacks funds — the user-level abort discipline of the paper's
   section 4.6. *)
let transfer ~from_acct ~to_acct ~amount =
  Txn.make ~input:Bytes.empty
    ~write_set:
      [
        Txn.Update { table = checking; key = from_acct };
        Txn.Update { table = checking; key = to_acct };
      ]
    (fun ctx ->
      let read key =
        match ctx.Txn.Ctx.read ~table:checking ~key with
        | Some v -> balance_of v
        | None -> failwith "missing account"
      in
      let src = read from_acct in
      if Int64.compare src amount < 0 then ctx.Txn.Ctx.abort ();
      let dst = read to_acct in
      ctx.Txn.Ctx.write ~table:checking ~key:from_acct (balance_bytes (Int64.sub src amount));
      ctx.Txn.Ctx.write ~table:checking ~key:to_acct (balance_bytes (Int64.add dst amount)))

let () =
  let config = Config.make ~cores:4 ~row_size:128 () in
  let tables =
    [ Table.make ~id:checking ~name:"checking" (); Table.make ~id:savings ~name:"savings" () ]
  in
  let db = Db.create ~config ~tables () in
  Db.bulk_load db
    (Seq.concat
       (List.to_seq
          [
            Seq.init accounts (fun i -> (checking, Int64.of_int i, balance_bytes 1000L));
            Seq.init accounts (fun i -> (savings, Int64.of_int i, balance_bytes 1000L));
          ]));

  let rng = Nv_util.Rng.create 2024 in
  let total_before = Int64.mul (Int64.of_int accounts) 1000L in

  for epoch = 1 to 6 do
    (* 90% of transfers involve a small hot set: under contention, most
       of the hot rows' version writes stay in DRAM, and only the final
       version per row per epoch reaches NVMM. *)
    let pick () =
      if Nv_util.Rng.float rng < 0.9 then Int64.of_int (Nv_util.Rng.int rng hot)
      else Int64.of_int (Nv_util.Rng.int rng accounts)
    in
    let batch =
      Array.init 500 (fun _ ->
          let from_acct = pick () in
          let rec other () =
            let t = pick () in
            if t = from_acct then other () else t
          in
          transfer ~from_acct ~to_acct:(other ())
            ~amount:(Int64.of_int (1 + Nv_util.Rng.int rng 200)))
    in
    let stats = Db.run_epoch db batch in
    Format.printf
      "epoch %d: %4d committed, %3d aborted, %4d version writes -> %3d persisted (%.0f%% \
       stayed in DRAM)@."
      epoch
      (stats.Report.txns - stats.Report.aborted)
      stats.Report.aborted stats.Report.version_writes stats.Report.persistent_writes
      (100.0 *. Report.transient_fraction stats)
  done;

  (* Money conservation: committed transfers move balances around but
     never create or destroy money. *)
  let total = ref 0L in
  Db.iter_committed db ~table:checking (fun _ v -> total := Int64.add !total (balance_of v));
  Format.printf "checking total: %Ld (expected %Ld) — %s@." !total total_before
    (if !total = total_before then "conserved" else "VIOLATION");
  Format.printf "simulated throughput: %.2f Mtxn/s@."
    (float_of_int (Db.committed_txns db) /. Db.total_time_ns db *. 1e3)
