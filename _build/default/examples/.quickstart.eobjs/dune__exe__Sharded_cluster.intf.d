examples/sharded_cluster.mli:
