examples/crash_and_recover.ml: Array Bytes Config Db Format Int64 Nv_util Nvcaracal Report Seq Table Txn
