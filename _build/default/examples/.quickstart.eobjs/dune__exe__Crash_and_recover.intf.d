examples/crash_and_recover.mli:
