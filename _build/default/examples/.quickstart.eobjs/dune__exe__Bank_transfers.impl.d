examples/bank_transfers.ml: Array Bytes Config Db Format Int64 List Nv_util Nvcaracal Report Seq Table Txn
