examples/quickstart.ml: Array Bytes Config Db Format Int64 Nv_util Nvcaracal Printf Report Seq Table Txn
