examples/online_store.ml: Array Bytes Config Db Format Hashtbl Int64 List Nv_util Nvcaracal Report Seq Table Txn
