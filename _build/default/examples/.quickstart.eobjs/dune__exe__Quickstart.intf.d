examples/quickstart.mli:
