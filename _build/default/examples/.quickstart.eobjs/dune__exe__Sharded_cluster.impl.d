examples/sharded_cluster.ml: Array Bytes Config Db Format Int64 Nv_util Nvcaracal Partition Seq Table Txn
