examples/online_store.mli:
