examples/replicated_pair.ml: Array Bytes Config Db Format Int64 Nv_util Nvcaracal Replication Seq Table Txn
