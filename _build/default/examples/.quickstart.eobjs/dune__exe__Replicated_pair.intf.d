examples/replicated_pair.mli:
