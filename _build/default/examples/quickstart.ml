(* Quickstart: create an NVCaracal database, load a table, run a few
   epochs of transactions, and inspect the results.

     dune exec examples/quickstart.exe *)

open Nvcaracal

let () =
  (* A database is created from a table schema and a configuration.
     [Config.default] is the full NVCaracal design: hybrid DRAM-NVMM
     storage, input logging, dual-version checkpointing. *)
  let config = Config.make ~cores:4 () in
  let tables = [ Table.make ~id:0 ~name:"kv" () ] in
  let db = Db.create ~config ~tables () in

  (* Bulk-load initial data; this commits as epoch 1. *)
  Db.bulk_load db
    (Seq.init 1000 (fun i ->
         (0, Int64.of_int i, Bytes.of_string (Printf.sprintf "value-%d" i))));
  Format.printf "loaded %d rows@." 1000;

  (* A transaction declares its write set up front (deterministic
     databases need write sets before execution) and provides a body
     that reads and writes through the context. *)
  let increment key =
    Txn.make
      ~input:Bytes.empty (* would be the serialized input in production *)
      ~write_set:[ Txn.Update { table = 0; key } ]
      (fun ctx ->
        match ctx.Txn.Ctx.read ~table:0 ~key with
        | Some v -> ctx.Txn.Ctx.write ~table:0 ~key (Bytes.cat v (Bytes.of_string "!"))
        | None -> failwith "missing key")
  in

  (* Transactions are processed in epochs; the batch order is the
     serial order. Within an epoch, writes are visible to later
     transactions immediately (early write visibility). *)
  let rng = Nv_util.Rng.create 1 in
  for epoch = 1 to 5 do
    let batch =
      Array.init 200 (fun _ -> increment (Int64.of_int (Nv_util.Rng.int rng 1000)))
    in
    let stats = Db.run_epoch db batch in
    Format.printf "epoch %d: %a@." epoch Report.pp_epoch_stats stats
  done;

  (* Committed state is visible at epoch boundaries. *)
  (match Db.read_committed db ~table:0 ~key:7L with
  | Some v -> Format.printf "key 7 = %S@." (Bytes.to_string v)
  | None -> Format.printf "key 7 missing@.");

  (* The engine tracks DRAM/NVMM consumption and simulated time. *)
  Format.printf "%a@." Report.pp_mem_report (Db.mem_report db);
  Format.printf "committed %d txns in %.2f simulated ms@." (Db.committed_txns db)
    (Db.total_time_ns db /. 1e6)
