(* Crash and recover: the paper's headline capability. The database
   crashes mid-epoch, the simulated NVMM tears every unpersisted cache
   line, and recovery rebuilds the exact committed state from the bytes
   alone — then deterministically replays the crashed epoch from the
   input log.

     dune exec examples/crash_and_recover.exe *)

open Nvcaracal

let table = 0

(* Inputs must round-trip through the log for deterministic replay:
   encode (key, delta) pairs. *)
let encode key delta =
  let b = Bytes.create 16 in
  Bytes.set_int64_le b 0 key;
  Bytes.set_int64_le b 8 delta;
  b

let txn_of_input input =
  let key = Bytes.get_int64_le input 0 in
  let delta = Bytes.get_int64_le input 8 in
  Txn.make ~input ~write_set:[ Txn.Update { table; key } ] (fun ctx ->
      match ctx.Txn.Ctx.read ~table ~key with
      | Some v ->
          let b = Bytes.create 8 in
          Bytes.set_int64_le b 0 (Int64.add (Bytes.get_int64_le v 0) delta);
          ctx.Txn.Ctx.write ~table ~key b
      | None -> failwith "missing row")

let add key delta = txn_of_input (encode key delta)

exception Power_failure

let () =
  (* crash_safe tracks exactly which stores are persistent. *)
  let config = Config.make ~cores:4 ~crash_safe:true () in
  let tables = [ Table.make ~id:table ~name:"counters" () ] in
  let db = Db.create ~config ~tables () in
  Db.bulk_load db
    (Seq.init 500 (fun i ->
         let b = Bytes.create 8 in
         Bytes.set_int64_le b 0 0L;
         (table, Int64.of_int i, b)));

  let rng = Nv_util.Rng.create 99 in
  let batch () =
    Array.init 200 (fun _ ->
        add (Int64.of_int (Nv_util.Rng.int rng 500)) (Int64.of_int (Nv_util.Rng.int rng 10)))
  in

  (* Two clean epochs... *)
  ignore (Db.run_epoch db (batch ()));
  ignore (Db.run_epoch db (batch ()));
  Format.printf "committed 2 epochs (epoch = %d)@." (Db.epoch db);

  (* ...then the power fails in the middle of epoch 4's execution. *)
  Db.set_phase_hook db (fun phase ->
      if phase = Db.Exec_txn 120 then raise Power_failure);
  (try ignore (Db.run_epoch db (batch ())) with
  | Power_failure -> Format.printf "power failed mid-epoch!@.");

  (* Tear the NVMM to a legal crash image: every line independently
     keeps either its last persisted content or some prefix of the
     stores since. *)
  let pmem = Db.crash db ~rng:(Nv_util.Rng.create 1) in
  Format.printf "crashed; recovering from the NVMM image alone...@.";

  let db2, report = Db.recover ~config ~tables ~pmem ~rebuild:txn_of_input () in
  Format.printf "%a@." Report.pp_recovery_report report;
  Format.printf "recovered to epoch %d (the crashed epoch was replayed from its input log)@."
    (Db.epoch db2);

  (* The recovered database keeps processing. *)
  ignore (Db.run_epoch db2 (batch ()));
  let sum = ref 0L in
  Db.iter_committed db2 ~table (fun _ v -> sum := Int64.add !sum (Bytes.get_int64_le v 0));
  Format.printf "epoch %d committed after recovery; counter sum = %Ld@." (Db.epoch db2) !sum
