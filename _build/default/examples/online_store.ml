(* Online store: a TPC-C-flavoured scenario exercising ordered tables,
   inserts whose keys come from persistent counters (the insert step),
   and dynamic write sets (the append step) — the features Caracal's
   two-step initialization enables.

     dune exec examples/online_store.exe *)

open Nvcaracal

let products = 0 (* hash: product id -> stock *)
let orders = 1 (* ordered: order id -> (product, qty, shipped) *)
let order_counter = 0

let fields vals =
  let b = Bytes.create (8 * Array.length vals) in
  Array.iteri (fun i v -> Bytes.set_int64_le b (8 * i) v) vals;
  b

let field b i = Bytes.get_int64_le b (8 * i)

(* Place an order: the order id is drawn from a persistent counter
   during the insert step, so the write set is known before execution
   even though the key is generated on the fly. *)
let place_order ~product ~qty =
  let insert_gen ctx =
    let o = ctx.Txn.Ctx.counter_next ~idx:order_counter in
    Hashtbl.replace ctx.Txn.Ctx.notes 0 o;
    [ Txn.Insert { table = orders; key = o; data = None } ]
  in
  Txn.make ~insert_gen ~input:Bytes.empty
    ~write_set:[ Txn.Update { table = products; key = product } ]
    (fun ctx ->
      let o = Hashtbl.find ctx.Txn.Ctx.notes 0 in
      (match ctx.Txn.Ctx.read ~table:products ~key:product with
      | Some stock ->
          let n = field stock 0 in
          (* Out of stock: user-level abort before any write. *)
          if Int64.compare n (Int64.of_int qty) < 0 then ctx.Txn.Ctx.abort ();
          ctx.Txn.Ctx.write ~table:products ~key:product
            (fields [| Int64.sub n (Int64.of_int qty) |])
      | None -> failwith "no such product");
      ctx.Txn.Ctx.write ~table:orders ~key:o
        (fields [| product; Int64.of_int qty; 0L |]))

(* Ship the [rank]-th oldest unshipped order: the key is only known
   once this epoch's inserts exist, so the write set is dynamic
   (resolved in the append step, like TPC-C Delivery). Each shipping
   transaction in a batch gets a distinct rank so they target distinct
   orders. *)
let ship_oldest ~rank =
  let dynamic_write_set ctx =
    let unshipped =
      ctx.Txn.Ctx.range_read ~table:orders ~lo:0L ~hi:Int64.max_int
      |> List.filter (fun (_, data) -> field data 2 = 0L)
    in
    match List.nth_opt unshipped rank with
    | Some (key, _) ->
        Hashtbl.replace ctx.Txn.Ctx.notes 0 key;
        [ Txn.Update { table = orders; key } ]
    | None -> []
  in
  Txn.make ~dynamic_write_set ~input:Bytes.empty ~write_set:[] (fun ctx ->
      match Hashtbl.find_opt ctx.Txn.Ctx.notes 0 with
      | None -> ()
      | Some key -> (
          match ctx.Txn.Ctx.read ~table:orders ~key with
          | Some data when field data 2 = 0L ->
              ctx.Txn.Ctx.write ~table:orders ~key
                (fields [| field data 0; field data 1; 1L |])
          | Some _ | None -> ()))

let () =
  let config = Config.make ~cores:4 ~n_counters:1 () in
  let tables =
    [
      Table.make ~id:products ~name:"products" ();
      Table.make ~id:orders ~name:"orders" ~index:Table.Ordered ();
    ]
  in
  let db = Db.create ~config ~tables () in
  Db.bulk_load db (Seq.init 100 (fun i -> (products, Int64.of_int i, fields [| 12L |])));

  let rng = Nv_util.Rng.create 7 in
  for epoch = 1 to 4 do
    let ships = ref 0 in
    let batch =
      Array.init 120 (fun _ ->
          if Nv_util.Rng.int rng 3 = 0 then begin
            let rank = !ships in
            incr ships;
            ship_oldest ~rank
          end
          else
            place_order
              ~product:(Int64.of_int (Nv_util.Rng.int rng 100))
              ~qty:(1 + Nv_util.Rng.int rng 3))
    in
    let stats = Db.run_epoch db batch in
    Format.printf "epoch %d: %d committed, %d out-of-stock aborts@." epoch
      (stats.Report.txns - stats.Report.aborted)
      stats.Report.aborted
  done;

  let placed = ref 0 and shipped = ref 0 in
  Db.iter_committed db ~table:orders (fun _ data ->
      incr placed;
      if field data 2 = 1L then incr shipped);
  Format.printf "orders placed: %d, shipped: %d, next order id: %Ld@." !placed !shipped
    (Db.counter_value db order_counter)
