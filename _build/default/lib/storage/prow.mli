(** Persistent row codec (paper Figure 3 and sections 4.5, 5.3).

    A persistent row is a fixed-size record in NVMM holding the row key,
    a dual-version header, and an inline heap for small values:

    {v
    off  0  key        (int64)
    off  8  table id   (int32)
    off 12  flags      (int32)
    off 16  v1.sid     (int64)   v1 = stale / older checkpointed version
    off 24  v1.ptr     (Vptr)
    off 32  v2.sid     (int64)   v2 = most recent version
    off 40  v2.ptr     (Vptr)
    off 48  reserved   (40 bytes)
    off 88  inline heap (row_size - 88 bytes)
    v}

    Both version slots live in the first CPU cache line, and every
    version update stores the SID strictly before the pointer, which is
    what lets recovery disambiguate the three torn-update cases of
    section 4.5. The invariant maintained by the engine is
    [v1.sid < v2.sid] whenever both versions exist; SID 0 means empty.

    The inline heap is split into two halves so the two versions can
    each inline a value without moving bytes when versions rotate:
    with the default 256-byte row the heap is 168 bytes, matching the
    paper, and each half holds values up to 84 bytes.

    Charging: reads/writes of the version header charge one NVMM block;
    inline values charge only the blocks not already covered by the
    header access, so a fully-inline row costs exactly one block per
    access — the locality benefit section 6.4 measures. *)

type version = { sid : int64; ptr : Vptr.t }

val header_bytes : int
(** 88. *)

val inline_heap_bytes : row_size:int -> int
val half_capacity : row_size:int -> int
(** Max value length each inline half can hold. *)

val inline_half_off : row_size:int -> half:int -> int
(** Heap offset of half 0 or 1. *)

val min_row_size : int
(** Smallest legal row size (header plus a non-empty heap). *)

(** {1 Row lifecycle} *)

val init :
  Nv_nvmm.Pmem.t -> Nv_nvmm.Stats.t -> base:int -> key:int64 -> table:int -> unit
(** Initialize a freshly-allocated row: set key/table, clear both
    versions. Charges one block write and flushes the header line. *)

(** {1 Header access} *)

val read_header :
  Nv_nvmm.Pmem.t -> Nv_nvmm.Stats.t -> base:int -> int64 * int * version * version
(** [key, table, v1, v2], charging one block read. *)

val peek_versions : Nv_nvmm.Pmem.t -> base:int -> version * version
(** Uncharged versions read — for tests, assertions and code paths that
    already paid for the header block. *)

val peek_key : Nv_nvmm.Pmem.t -> base:int -> int64
val peek_table : Nv_nvmm.Pmem.t -> base:int -> int

(** {1 Version updates}

    Each of these writes the SID before the pointer and flushes the
    header line. [charge] (default true) bills one block write; pass
    false when the caller is coalescing several header stores into one
    row update (e.g. a minor-GC move followed by the final write). *)

val set_version :
  Nv_nvmm.Pmem.t ->
  Nv_nvmm.Stats.t ->
  base:int ->
  slot:[ `V1 | `V2 ] ->
  sid:int64 ->
  ptr:Vptr.t ->
  ?charge:bool ->
  unit ->
  unit

val set_version_ptr :
  Nv_nvmm.Pmem.t ->
  Nv_nvmm.Stats.t ->
  base:int ->
  slot:[ `V1 | `V2 ] ->
  ptr:Vptr.t ->
  ?charge:bool ->
  unit ->
  unit
(** Pointer-only fix-up (recovery torn-case repair). *)

val gc_move :
  Nv_nvmm.Pmem.t -> Nv_nvmm.Stats.t -> base:int -> ?charge:bool -> unit -> unit
(** The collector step both GCs share: copy v2 into v1 (SID first), then
    null v2 (SID first). Afterwards v1 holds the most recent
    checkpointed version and v2 is free. *)

(** {1 Values} *)

val write_inline_value :
  Nv_nvmm.Pmem.t ->
  Nv_nvmm.Stats.t ->
  base:int ->
  row_size:int ->
  half:int ->
  data:bytes ->
  ?charge:bool ->
  unit ->
  Vptr.t
(** Store [data] into inline half [half], flush it, and return the
    pointer to record. Charges only blocks beyond the header block. *)

val read_value :
  Nv_nvmm.Pmem.t ->
  Nv_nvmm.Stats.t ->
  base:int ->
  Vptr.t ->
  ?header_charged:bool ->
  unit ->
  bytes
(** Fetch the value bytes for a pointer. Inline values charge only
    blocks beyond the header block when [header_charged] (default
    true); pool values charge their full range. Raises [Invalid_argument]
    on [Null]. *)
