module Pmem = Nv_nvmm.Pmem
module Stats = Nv_nvmm.Stats
module Memspec = Nv_nvmm.Memspec

type version = { sid : int64; ptr : Vptr.t }

let header_bytes = 88
let min_row_size = header_bytes + 8

let inline_heap_bytes ~row_size =
  assert (row_size >= min_row_size);
  row_size - header_bytes

let half_capacity ~row_size = inline_heap_bytes ~row_size / 2

let inline_half_off ~row_size ~half =
  assert (half = 0 || half = 1);
  half * half_capacity ~row_size

let key_off base = base
let table_off base = base + 8
let flags_off base = base + 12
let sid_off base = function `V1 -> base + 16 | `V2 -> base + 32
let ptr_off base = function `V1 -> base + 24 | `V2 -> base + 40
let heap_off base = base + header_bytes

let flush_header pmem stats ~base = Pmem.flush pmem stats ~off:base ~len:48

let init pmem stats ~base ~key ~table =
  Pmem.set_i64 pmem (key_off base) key;
  Pmem.set_i32 pmem (table_off base) (Int32.of_int table);
  Pmem.set_i32 pmem (flags_off base) 1l;
  Pmem.set_i64 pmem (sid_off base `V1) 0L;
  Pmem.set_i64 pmem (ptr_off base `V1) 0L;
  Pmem.set_i64 pmem (sid_off base `V2) 0L;
  Pmem.set_i64 pmem (ptr_off base `V2) 0L;
  Stats.nvmm_write_blocks stats 1;
  flush_header pmem stats ~base

let peek_version pmem ~base slot =
  { sid = Pmem.get_i64 pmem (sid_off base slot); ptr = Pmem.get_i64 pmem (ptr_off base slot) }

let peek_versions pmem ~base = (peek_version pmem ~base `V1, peek_version pmem ~base `V2)
let peek_key pmem ~base = Pmem.get_i64 pmem (key_off base)
let peek_table pmem ~base = Int32.to_int (Pmem.get_i32 pmem (table_off base))

let read_header pmem stats ~base =
  Stats.nvmm_read_blocks stats 1;
  let v1, v2 = peek_versions pmem ~base in
  (peek_key pmem ~base, peek_table pmem ~base, v1, v2)

let set_version pmem stats ~base ~slot ~sid ~ptr ?(charge = true) () =
  (* SID strictly before pointer: recovery relies on this order. *)
  Pmem.set_i64 pmem (sid_off base slot) sid;
  Pmem.set_i64 pmem (ptr_off base slot) ptr;
  if charge then Stats.nvmm_write_blocks stats 1;
  flush_header pmem stats ~base

let set_version_ptr pmem stats ~base ~slot ~ptr ?(charge = true) () =
  Pmem.set_i64 pmem (ptr_off base slot) ptr;
  if charge then Stats.nvmm_write_blocks stats 1;
  flush_header pmem stats ~base

let gc_move pmem stats ~base ?(charge = true) () =
  let v2 = peek_version pmem ~base `V2 in
  Pmem.set_i64 pmem (sid_off base `V1) v2.sid;
  Pmem.set_i64 pmem (ptr_off base `V1) v2.ptr;
  Pmem.set_i64 pmem (sid_off base `V2) 0L;
  Pmem.set_i64 pmem (ptr_off base `V2) 0L;
  if charge then Stats.nvmm_write_blocks stats 1;
  flush_header pmem stats ~base

(* Blocks touched by an in-row byte range, excluding the row's first
   block (assumed already charged by the header access). *)
let extra_blocks stats ~base ~off ~len =
  let spec = Stats.spec stats in
  if len <= 0 then 0
  else
    let block = spec.Memspec.nvmm_block in
    let header_block = base / block in
    let first = off / block and last = (off + len - 1) / block in
    let n = last - first + 1 in
    if first = header_block then n - 1 else n

let write_inline_value pmem stats ~base ~row_size ~half ~data ?(charge = true) () =
  let len = Bytes.length data in
  assert (len > 0 && len <= half_capacity ~row_size);
  let hoff = inline_half_off ~row_size ~half in
  let abs = heap_off base + hoff in
  Pmem.blit_to pmem ~src:data ~src_off:0 ~dst_off:abs ~len;
  if charge then Stats.nvmm_write_blocks stats (extra_blocks stats ~base ~off:abs ~len);
  Pmem.flush pmem stats ~off:abs ~len;
  Vptr.inline ~heap_off:hoff ~len

let read_value pmem stats ~base ptr ?(header_charged = true) () =
  match Vptr.classify ptr with
  | Vptr.Null -> invalid_arg "Prow.read_value: null pointer"
  | Vptr.Inline { heap_off = hoff; len } ->
      let abs = heap_off base + hoff in
      let blocks =
        if header_charged then extra_blocks stats ~base ~off:abs ~len
        else Memspec.blocks_touched (Stats.spec stats) ~off:abs ~len
      in
      Stats.nvmm_read_blocks stats blocks;
      Pmem.read_bytes pmem ~off:abs ~len
  | Vptr.Pool { off; len } ->
      Pmem.charge_read pmem stats ~off ~len;
      Pmem.read_bytes pmem ~off ~len
