module Pmem = Nv_nvmm.Pmem
module Stats = Nv_nvmm.Stats
module Layout = Nv_nvmm.Layout

let bucket_bytes = 24

(* state word: table << 48 | epoch << 2 | tombstone | used *)
let state_used = 1L
let state_tomb = 2L

type t = {
  pmem : Pmem.t;
  off : int;
  capacity : int;
  mutable live : int;
  mutable occupied : int; (* used buckets, live or tombstoned *)
}

let reserve builder ~capacity =
  assert (capacity > 0);
  Layout.reserve builder ~name:"pindex" ~len:(capacity * bucket_bytes) ()

let attach pmem (r : Layout.region) =
  { pmem; off = r.Layout.off; capacity = r.Layout.len / bucket_bytes; live = 0; occupied = 0 }

let capacity t = t.capacity
let live_entries t = t.live
let nvmm_bytes t = t.capacity * bucket_bytes

let bucket_off t i = t.off + (i * bucket_bytes)

let mk_state ~table ~epoch ~tomb =
  Int64.(
    logor
      (shift_left (of_int table) 48)
      (logor (shift_left (of_int epoch) 2) (logor (if tomb then state_tomb else 0L) state_used)))

let state_table s = Int64.to_int (Int64.shift_right_logical s 48)
let state_epoch s = Int64.to_int (Int64.logand (Int64.shift_right_logical s 2) 0x3FFFFFFFFFFL)
let state_is_used s = Int64.logand s state_used = state_used
let state_is_tomb s = Int64.logand s state_tomb = state_tomb

let read_bucket t i =
  let off = bucket_off t i in
  (Pmem.get_i64 t.pmem off, Pmem.get_i64 t.pmem (off + 8), Pmem.get_i64 t.pmem (off + 16))

let hash_of ~key ~table = Nv_util.Fnv.combine (Nv_util.Fnv.hash_int64 key) table

(* Write a bucket's fields with state last, flushing the lines touched;
   charged at line granularity (batched updates are locality-friendly). *)
let write_bucket t stats i ~key ~base ~state =
  let off = bucket_off t i in
  Pmem.set_i64 t.pmem off key;
  Pmem.set_i64 t.pmem (off + 8) base;
  Pmem.set_i64 t.pmem (off + 16) state;
  Stats.nvmm_write_lines stats 1;
  Pmem.flush t.pmem stats ~off ~len:bucket_bytes

let write_state t stats i ~state =
  let off = bucket_off t i in
  Pmem.set_i64 t.pmem (off + 16) state;
  Stats.nvmm_write_lines stats 1;
  Pmem.flush t.pmem stats ~off:(off + 16) ~len:8

(* Probe for (key, table). Returns [`Live i] when a live or tombstoned
   bucket holds the key, [`Empty (i, first_tomb)] at the end of the
   chain. *)
let probe t stats ~key ~table =
  let start = hash_of ~key ~table mod t.capacity in
  let rec go i steps first_tomb =
    if steps > t.capacity then failwith "Pindex: table full during probe";
    Stats.nvmm_read_lines stats 1;
    let k, _, s = read_bucket t i in
    if not (state_is_used s) then `Empty (i, first_tomb)
    else if k = key && state_table s = table then `At i
    else
      let first_tomb =
        match first_tomb with
        | Some _ -> first_tomb
        | None -> if state_is_tomb s then Some i else None
      in
      go ((i + 1) mod t.capacity) (steps + 1) first_tomb
  in
  go start 0 None

let apply_batch t stats ~epoch ~inserts ~deletes =
  (* Deletes first so a same-epoch delete + re-insert reuses cleanly. *)
  List.iter
    (fun (key, table) ->
      match probe t stats ~key ~table with
      | `At i ->
          let _, _, s = read_bucket t i in
          if not (state_is_tomb s) then begin
            t.live <- t.live - 1;
            write_state t stats i ~state:(mk_state ~table ~epoch ~tomb:true)
          end
      | `Empty _ -> ())
    deletes;
  List.iter
    (fun (key, base, table) ->
      if (t.occupied + 1) * 8 > t.capacity * 7 then
        failwith "Pindex: capacity exceeded (resize not supported)";
      match probe t stats ~key ~table with
      | `At i ->
          (* Overwrite (replay of a pre-crash insert, or resurrected
             tombstone): kill the bucket first so a torn update can
             never pair an old live state with a new base. *)
          let _, _, s = read_bucket t i in
          let was_live = not (state_is_tomb s) in
          write_state t stats i ~state:(mk_state ~table ~epoch:(state_epoch s) ~tomb:true);
          Pmem.fence t.pmem stats;
          write_bucket t stats i ~key ~base:(Int64.of_int base)
            ~state:(mk_state ~table ~epoch ~tomb:false);
          if not was_live then t.live <- t.live + 1
      | `Empty (i, first_tomb) ->
          let target = Option.value first_tomb ~default:i in
          if target = i then t.occupied <- t.occupied + 1;
          t.live <- t.live + 1;
          write_bucket t stats target ~key ~base:(Int64.of_int base)
            ~state:(mk_state ~table ~epoch ~tomb:false))
    inserts

let iter_recovered t stats ~crashed_epoch ~f =
  t.live <- 0;
  t.occupied <- 0;
  (* Sequential scan: line-granular read charge for the whole table. *)
  Stats.nvmm_read_lines stats (((t.capacity * bucket_bytes) + 63) / 64);
  for i = 0 to t.capacity - 1 do
    let key, base, s = read_bucket t i in
    if state_is_used s then begin
      t.occupied <- t.occupied + 1;
      let table = state_table s in
      let tagged_crashed = state_epoch s = crashed_epoch && crashed_epoch > 0 in
      if state_is_tomb s then begin
        if tagged_crashed then begin
          (* Reverted delete: resurrect. *)
          write_state t stats i ~state:(mk_state ~table ~epoch:0 ~tomb:false);
          t.live <- t.live + 1;
          f ~key ~table ~base:(Int64.to_int base)
        end
      end
      else if tagged_crashed then
        (* Reverted insert: keep the bucket as a tombstone so probe
           chains stay intact. *)
        write_state t stats i ~state:(mk_state ~table ~epoch:0 ~tomb:true)
      else begin
        t.live <- t.live + 1;
        f ~key ~table ~base:(Int64.to_int base)
      end
    end
  done
