module Stats = Nv_nvmm.Stats
module Memspec = Nv_nvmm.Memspec

type vref = { core : int; off : int; len : int }
type arena = { mutable buf : bytes; mutable used : int }
type t = { arenas : arena array; mutable peak : int }

let create ~cores ~initial_capacity =
  {
    arenas = Array.init cores (fun _ -> { buf = Bytes.create initial_capacity; used = 0 });
    peak = 0;
  }

let used_bytes t = Array.fold_left (fun acc a -> acc + a.used) 0 t.arenas
let peak_bytes t = t.peak

let ensure a len =
  let cap = Bytes.length a.buf in
  if a.used + len > cap then begin
    let ncap = max (cap * 2) (a.used + len) in
    let nb = Bytes.create ncap in
    Bytes.blit a.buf 0 nb 0 a.used;
    a.buf <- nb
  end

let lines stats len = Memspec.lines_touched (Stats.spec stats) ~off:0 ~len

let write t stats ?(charge = true) ~core data =
  let a = t.arenas.(core) in
  let len = Bytes.length data in
  ensure a len;
  Bytes.blit data 0 a.buf a.used len;
  let off = a.used in
  a.used <- a.used + ((len + 7) land lnot 7);
  if charge then Stats.dram_write stats ~lines:(lines stats len) ();
  let total = used_bytes t in
  if total > t.peak then t.peak <- total;
  { core; off; len }

let read t stats ?(charge = true) { core; off; len } =
  if charge then Stats.dram_read stats ~lines:(lines stats len) ();
  Bytes.sub t.arenas.(core).buf off len

let reset t = Array.iter (fun a -> a.used <- 0) t.arenas
