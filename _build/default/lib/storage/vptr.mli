(** Persistent value pointers.

    A version slot in a persistent row holds a serial ID and a value
    pointer. The pointer is a single 64-bit word (so it can be updated
    with one atomic store, which the recovery protocol relies on) that
    encodes where the value bytes live:

    - [Null] — no value;
    - [Inline of {heap_off; len}] — inside the row's inline heap, at
      byte offset [heap_off] from the heap start;
    - [Pool of {off; len}] — at absolute pmem offset [off] in the
      persistent value pool.

    Layout: bit 0 tags inline pointers. Inline: bits 1–21 heap offset,
    bits 22–43 length. Pool: bits 1–42 offset/2 (pool slots are
    256-aligned so offsets are even), bits 43–62 length. *)

type t = int64

type classified =
  | Null
  | Inline of { heap_off : int; len : int }
  | Pool of { off : int; len : int }

val null : t
val is_null : t -> bool
val inline : heap_off:int -> len:int -> t
val pool : off:int -> len:int -> t
val classify : t -> classified

val len : t -> int
(** Value length; 0 for [Null]. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
