module Pmem = Nv_nvmm.Pmem

type t = { pmem : Pmem.t; meta_off : int; capacity : int; mutable offset : int }

let meta_bytes = 16

let slot_off t epoch = if epoch land 1 = 1 then t.meta_off else t.meta_off + 8

let create pmem ~meta_off ~capacity =
  assert (meta_off land 7 = 0);
  { pmem; meta_off; capacity; offset = 0 }

let offset t = t.offset

let alloc t =
  if t.offset >= t.capacity then failwith "Bump.alloc: pool capacity exhausted";
  let i = t.offset in
  t.offset <- i + 1;
  i

let checkpoint t stats ~epoch =
  let off = slot_off t epoch in
  Pmem.set_i64 t.pmem off (Int64.of_int t.offset);
  Pmem.charge_write t.pmem stats ~off ~len:8;
  Pmem.flush t.pmem stats ~off ~len:8

let recover t ~last_checkpointed_epoch =
  t.offset <-
    (if last_checkpointed_epoch = 0 then 0
     else Int64.to_int (Pmem.get_i64 t.pmem (slot_off t last_checkpointed_epoch)))
