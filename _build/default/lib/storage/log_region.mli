(** Epoch input log (paper section 4.3).

    At the start of each epoch, the serialized inputs of every
    transaction in the batch are appended here and persisted before the
    execution phase begins. Appends are sequential, so they run at
    streaming NVMM bandwidth — the efficiency argument of section 4.3.

    The region holds a single epoch's log: the previous epoch is always
    checkpointed before the next begins, so its log is never needed
    again. Commit protocol: entries are appended and written back,
    then a fence makes them durable, and only then is the entry count
    published (and fenced) — so a committed count implies every entry
    is durable. An epoch whose log never committed is treated by
    recovery as having never been submitted. *)

type t

val header_bytes : int

val reserve : Nv_nvmm.Layout.builder -> capacity_bytes:int -> Nv_nvmm.Layout.region
val attach : Nv_nvmm.Pmem.t -> Nv_nvmm.Layout.region -> t

val begin_epoch : t -> Nv_nvmm.Stats.t -> epoch:int -> unit
(** Invalidate the previous log and start logging [epoch]. *)

val append : t -> Nv_nvmm.Stats.t -> bytes -> unit
(** Append one transaction's input record. Raises [Failure] when the
    region overflows (configuration error). *)

val commit : t -> Nv_nvmm.Stats.t -> unit
(** Fence entries, publish the count, fence again. After this returns,
    the epoch's inputs are recoverable. *)

val read_committed : t -> Nv_nvmm.Stats.t -> (int * bytes list) option
(** [Some (epoch, entries)] if the region holds a committed log;
    [None] if the last log never committed. Charges sequential reads. *)

val bytes_appended : t -> int
(** Bytes appended in the current epoch (logging-volume reporting). *)
