type t = int64

type classified =
  | Null
  | Inline of { heap_off : int; len : int }
  | Pool of { off : int; len : int }

let null = 0L
let is_null t = t = 0L

let max_inline_off = (1 lsl 21) - 1
let max_inline_len = (1 lsl 22) - 1
let max_pool_off = (1 lsl 43) - 2
let max_pool_len = (1 lsl 20) - 1

let inline ~heap_off ~len =
  assert (heap_off >= 0 && heap_off <= max_inline_off);
  assert (len > 0 && len <= max_inline_len);
  Int64.(logor 1L (logor (shift_left (of_int heap_off) 1) (shift_left (of_int len) 22)))

let pool ~off ~len =
  assert (off > 0 && off land 1 = 0 && off / 2 <= max_pool_off);
  assert (len > 0 && len <= max_pool_len);
  Int64.(logor (shift_left (of_int (off / 2)) 1) (shift_left (of_int len) 43))

let classify t =
  if t = 0L then Null
  else if Int64.logand t 1L = 1L then
    Inline
      {
        heap_off = Int64.to_int (Int64.logand (Int64.shift_right_logical t 1) 0x1FFFFFL);
        len = Int64.to_int (Int64.logand (Int64.shift_right_logical t 22) 0x3FFFFFL);
      }
  else
    Pool
      {
        off = 2 * Int64.to_int (Int64.logand (Int64.shift_right_logical t 1) 0x3FFFFFFFFFFL);
        len = Int64.to_int (Int64.logand (Int64.shift_right_logical t 43) 0xFFFFFL);
      }

let len t = match classify t with Null -> 0 | Inline { len; _ } | Pool { len; _ } -> len

let equal = Int64.equal

let pp ppf t =
  match classify t with
  | Null -> Format.fprintf ppf "null"
  | Inline { heap_off; len } -> Format.fprintf ppf "inline(+%d,%d)" heap_off len
  | Pool { off; len } -> Format.fprintf ppf "pool(@%d,%d)" off len
