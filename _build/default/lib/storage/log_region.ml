module Pmem = Nv_nvmm.Pmem
module Layout = Nv_nvmm.Layout

(* Header: 0 count | 8 epoch | 16 total_len. The count is stored first
   and zeroed at begin_epoch *before* the epoch tag is stored, so every
   torn prefix is either "stale log" or "epoch tagged, count 0" — never
   a new tag with a stale count. *)
type t = {
  pmem : Pmem.t;
  off : int;
  capacity : int;
  mutable write_pos : int;
  mutable count : int;
}

let header_bytes = 24

let reserve builder ~capacity_bytes =
  Layout.reserve builder ~name:"log" ~len:(header_bytes + capacity_bytes) ()

let attach pmem (r : Layout.region) =
  { pmem; off = r.Layout.off; capacity = r.Layout.len - header_bytes; write_pos = 0; count = 0 }

let begin_epoch t stats ~epoch =
  Pmem.set_i64 t.pmem t.off 0L;
  Pmem.set_i64 t.pmem (t.off + 8) (Int64.of_int epoch);
  Pmem.set_i64 t.pmem (t.off + 16) 0L;
  Pmem.charge_write t.pmem stats ~off:t.off ~len:24;
  Pmem.persist t.pmem stats ~off:t.off ~len:24;
  t.write_pos <- 0;
  t.count <- 0

let entry_base t = t.off + header_bytes

let align4 v = (v + 3) land lnot 3

let append t stats record =
  let len = Bytes.length record in
  let need = align4 (4 + len) in
  if t.write_pos + need > t.capacity then failwith "Log_region.append: log region full";
  let pos = entry_base t + t.write_pos in
  Pmem.set_i32 t.pmem pos (Int32.of_int len);
  Pmem.blit_to t.pmem ~src:record ~src_off:0 ~dst_off:(pos + 4) ~len;
  Pmem.charge_seq_write t.pmem stats ~bytes:need;
  Pmem.flush t.pmem stats ~off:pos ~len:(4 + len);
  t.write_pos <- t.write_pos + need;
  t.count <- t.count + 1

let commit t stats =
  (* Entries were written back by [append]; the first fence makes them
     durable before the count that validates them is published. *)
  Pmem.fence t.pmem stats;
  Pmem.set_i64 t.pmem (t.off + 16) (Int64.of_int t.write_pos);
  Pmem.set_i64 t.pmem t.off (Int64.of_int t.count);
  Pmem.charge_write t.pmem stats ~off:t.off ~len:24;
  Pmem.persist t.pmem stats ~off:t.off ~len:24

let read_committed t stats =
  let count = Int64.to_int (Pmem.get_i64 t.pmem t.off) in
  let epoch = Int64.to_int (Pmem.get_i64 t.pmem (t.off + 8)) in
  Pmem.charge_read t.pmem stats ~off:t.off ~len:24;
  if count <= 0 then None
  else begin
    let entries = ref [] in
    let pos = ref (entry_base t) in
    for _ = 1 to count do
      let len = Int32.to_int (Pmem.get_i32 t.pmem !pos) in
      Pmem.charge_read t.pmem stats ~off:!pos ~len:(4 + len);
      entries := Pmem.read_bytes t.pmem ~off:(!pos + 4) ~len :: !entries;
      pos := !pos + align4 (4 + len)
    done;
    Some (epoch, List.rev !entries)
  end

let bytes_appended t = t.write_pos
