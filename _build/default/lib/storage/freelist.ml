module Pmem = Nv_nvmm.Pmem

type t = {
  pmem : Pmem.t;
  meta_off : int;
  ring_off : int;
  capacity : int;
  mutable head : int; (* monotone pop counter *)
  mutable tail : int; (* monotone append counter *)
  mutable allowed_tail : int; (* head may not cross this *)
}

(* Meta slot layout (8 bytes each):
   0 head1 | 8 head2 | 16 tail1 | 24 tail2 | 32 current_tail | 40 current_tail_epoch *)
let meta_bytes = 48
let ring_bytes ~capacity = capacity * 8

let head_slot t epoch = if epoch land 1 = 1 then t.meta_off else t.meta_off + 8
let tail_slot t epoch = if epoch land 1 = 1 then t.meta_off + 16 else t.meta_off + 24
let current_tail_off t = t.meta_off + 32
let current_tail_epoch_off t = t.meta_off + 40

let create pmem ~meta_off ~ring_off ~capacity =
  assert (meta_off land 7 = 0 && ring_off land 7 = 0 && capacity > 0);
  { pmem; meta_off; ring_off; capacity; head = 0; tail = 0; allowed_tail = 0 }

let length t = t.tail - t.head
let allocatable t = t.allowed_tail - t.head

let entry_off t counter = t.ring_off + (counter mod t.capacity * 8)

let alloc t stats =
  if t.head >= t.allowed_tail then None
  else begin
    let off = entry_off t t.head in
    let v = Pmem.get_i64 t.pmem off in
    Pmem.charge_read t.pmem stats ~off ~len:8;
    t.head <- t.head + 1;
    Some v
  end

let free t stats v =
  if t.tail - t.head >= t.capacity then failwith "Freelist.free: ring overflow";
  let off = entry_off t t.tail in
  Pmem.set_i64 t.pmem off v;
  (* Appends are sequential; charge at streaming rate and write the line
     back immediately so the entry is durable once the next fence hits. *)
  Pmem.charge_seq_write t.pmem stats ~bytes:8;
  Pmem.flush t.pmem stats ~off ~len:8;
  t.tail <- t.tail + 1

let persist_counter t stats off v =
  Pmem.set_i64 t.pmem off (Int64.of_int v);
  Pmem.charge_write t.pmem stats ~off ~len:8;
  Pmem.flush t.pmem stats ~off ~len:8

let checkpoint t stats ~epoch =
  persist_counter t stats (head_slot t epoch) t.head;
  persist_counter t stats (tail_slot t epoch) t.tail;
  (* Once this epoch commits, every entry (including this epoch's
     transaction frees) may be reused by the next epoch. *)
  t.allowed_tail <- t.tail

let persist_gc_tail t stats ~epoch =
  (* Order matters: the tail value must hit NVMM before the epoch tag
     that validates it, and the ring entries were already flushed by
     [free]. Both stores share a cache line, so the store-order snapshot
     model preserves "tail before tag". *)
  persist_counter t stats (current_tail_off t) t.tail;
  persist_counter t stats (current_tail_epoch_off t) epoch;
  t.allowed_tail <- t.tail

let iter_entries t ~f =
  for c = t.head to t.tail - 1 do
    f (Pmem.get_i64 t.pmem (entry_off t c))
  done

let recover t ~last_checkpointed_epoch ~crashed_epoch =
  let lce = last_checkpointed_epoch in
  let read off = Int64.to_int (Pmem.get_i64 t.pmem off) in
  let head = if lce = 0 then 0 else read (head_slot t lce) in
  let base_tail = if lce = 0 then 0 else read (tail_slot t lce) in
  let ct_epoch = read (current_tail_epoch_off t) in
  let tail, gc_frees =
    if ct_epoch = crashed_epoch && crashed_epoch > 0 then begin
      (* Major GC of the crashed epoch completed pass 1: its frees are
         durable and must not be replayed. *)
      let ct = read (current_tail_off t) in
      let frees = ref [] in
      for c = base_tail to ct - 1 do
        frees := Pmem.get_i64 t.pmem (entry_off t c) :: !frees
      done;
      (ct, List.rev !frees)
    end
    else (base_tail, [])
  in
  t.head <- head;
  t.tail <- tail;
  t.allowed_tail <- tail;
  gc_frees
