(** Persistent row index in NVMM (the paper's section 7 future work:
    "persisting the row indexes to NVMM to improve recovery time and
    reduce DRAM requirements further... our epoch-based design will
    allow persisting index updates in batches efficiently").

    An open-addressing hash table of 24-byte buckets in NVMM:

    {v
    off 0   key      (int64)
    off 8   row base (int64)
    off 16  state    (int64): epoch << 2 | tombstone | used
    v}

    The DRAM index remains the operational index; this table exists so
    recovery can rebuild it from a sequential bucket scan instead of
    scanning (and block-reading) every persistent row. Index changes
    made during an epoch are buffered in DRAM and applied in one batch
    at the end of the epoch, before the epoch number is persisted — so
    the table is consistent as of the last checkpoint, plus entries
    tagged with the crashed epoch that recovery knows to interpret:

    - a {e live} entry tagged with the crashed epoch is a reverted
      insert: ignored (its row allocation was rolled back);
    - a {e tombstone} tagged with the crashed epoch is a reverted
      delete: the key is still live and is resurrected;
    - older tombstones stay dead (their slots are reusable).

    Buckets are updated in place (24 bytes within one cache line after
    alignment... a bucket may straddle; updates write state last), and
    a batch's writes are flushed before the epoch-commit fence. *)

type t

val reserve : Nv_nvmm.Layout.builder -> capacity:int -> Nv_nvmm.Layout.region
(** [capacity] buckets (sized >= 2x expected keys; load is capped). *)

val attach : Nv_nvmm.Pmem.t -> Nv_nvmm.Layout.region -> t

val capacity : t -> int
val live_entries : t -> int

val apply_batch :
  t ->
  Nv_nvmm.Stats.t ->
  epoch:int ->
  inserts:(int64 * int * int) list ->
  deletes:(int64 * int) list ->
  unit
(** Apply one epoch's index delta: [(key, row_base, table)] inserts and
    [(key, table)] deletes. Writes are flushed (the caller fences as
    part of epoch commit). Raises [Failure] when the table would exceed
    ~87% load. *)

val iter_recovered :
  t ->
  Nv_nvmm.Stats.t ->
  crashed_epoch:int ->
  f:(key:int64 -> table:int -> base:int -> unit) ->
  unit
(** Visit every entry live as of the last checkpoint, resolving
    crashed-epoch tags as described above; charges sequential
    line-granular NVMM reads. Also repairs crashed-epoch tags in place
    so a subsequent recovery sees a clean table. *)

val nvmm_bytes : t -> int
