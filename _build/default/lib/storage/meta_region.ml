module Pmem = Nv_nvmm.Pmem
module Layout = Nv_nvmm.Layout

type t = { pmem : Pmem.t; off : int; n_counters : int }

(* Layout: 0 epoch | then n_counters pairs of (slot1, slot2). *)
let size ~n_counters = 8 + (n_counters * 16)

let reserve builder ~n_counters =
  Layout.reserve builder ~name:"meta" ~len:(size ~n_counters) ()

let attach pmem (r : Layout.region) ~n_counters =
  assert (r.Layout.len >= size ~n_counters);
  { pmem; off = r.Layout.off; n_counters }

let persist_epoch t stats ~epoch =
  Pmem.fence t.pmem stats;
  Pmem.set_i64 t.pmem t.off (Int64.of_int epoch);
  Pmem.charge_write t.pmem stats ~off:t.off ~len:8;
  Pmem.persist t.pmem stats ~off:t.off ~len:8

let read_epoch t = Int64.to_int (Pmem.get_i64 t.pmem t.off)

let counter_slot t i epoch = t.off + 8 + (i * 16) + if epoch land 1 = 1 then 0 else 8

let checkpoint_counters t stats ~epoch values =
  assert (Array.length values = t.n_counters);
  Array.iteri
    (fun i v ->
      let off = counter_slot t i epoch in
      Pmem.set_i64 t.pmem off v;
      Pmem.charge_write t.pmem stats ~off ~len:8;
      Pmem.flush t.pmem stats ~off ~len:8)
    values

let recover_counters t ~last_checkpointed_epoch =
  Array.init t.n_counters (fun i ->
      if last_checkpointed_epoch = 0 then 0L
      else Pmem.get_i64 t.pmem (counter_slot t i last_checkpointed_epoch))
