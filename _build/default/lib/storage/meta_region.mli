(** Global persistent metadata: the committed epoch number and the
    dual-slot checkpointed counters used by TPC-C's order-id generators
    (paper sections 4.3 and 6.2.3).

    The epoch number is the commit record of the whole epoch: it is
    persisted (fence, store, flush, fence) only after every other write
    of the epoch has been fenced, so recovery reads it to learn the
    last fully-checkpointed epoch. *)

type t

val reserve : Nv_nvmm.Layout.builder -> n_counters:int -> Nv_nvmm.Layout.region
val attach : Nv_nvmm.Pmem.t -> Nv_nvmm.Layout.region -> n_counters:int -> t

val persist_epoch : t -> Nv_nvmm.Stats.t -> epoch:int -> unit
(** The epoch-commit step of Algorithm 1: fence, publish [epoch],
    flush, fence. *)

val read_epoch : t -> int
(** Last committed epoch; 0 if none. *)

val checkpoint_counters : t -> Nv_nvmm.Stats.t -> epoch:int -> int64 array -> unit
(** Persist counter values into [epoch]'s slots (flush only). *)

val recover_counters : t -> last_checkpointed_epoch:int -> int64 array
(** Counter values as of the last checkpoint (zeros if never
    checkpointed). *)
