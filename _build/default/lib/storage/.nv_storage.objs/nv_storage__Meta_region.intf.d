lib/storage/meta_region.mli: Nv_nvmm
