lib/storage/log_region.mli: Nv_nvmm
