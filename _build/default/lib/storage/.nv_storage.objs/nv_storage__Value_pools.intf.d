lib/storage/value_pools.mli: Hashtbl Nv_nvmm
