lib/storage/pindex.ml: Int64 List Nv_nvmm Nv_util Option
