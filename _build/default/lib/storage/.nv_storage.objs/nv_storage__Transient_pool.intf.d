lib/storage/transient_pool.mli: Nv_nvmm
