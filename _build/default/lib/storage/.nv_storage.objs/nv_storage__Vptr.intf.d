lib/storage/vptr.mli: Format
