lib/storage/freelist.mli: Nv_nvmm
