lib/storage/slab_pool.ml: Array Bump Bytes Freelist Hashtbl Int64 List Nv_nvmm Printf
