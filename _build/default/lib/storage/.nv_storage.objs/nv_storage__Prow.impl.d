lib/storage/prow.ml: Bytes Int32 Nv_nvmm Vptr
