lib/storage/bump.ml: Int64 Nv_nvmm
