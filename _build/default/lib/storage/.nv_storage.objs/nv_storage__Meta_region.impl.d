lib/storage/meta_region.ml: Array Int64 Nv_nvmm
