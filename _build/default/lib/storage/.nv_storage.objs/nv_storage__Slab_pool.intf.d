lib/storage/slab_pool.mli: Hashtbl Nv_nvmm
