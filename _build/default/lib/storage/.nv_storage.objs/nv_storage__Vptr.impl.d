lib/storage/vptr.ml: Format Int64
