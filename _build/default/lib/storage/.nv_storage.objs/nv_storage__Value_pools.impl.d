lib/storage/value_pools.ml: Hashtbl Int64 List Nv_nvmm Printf Slab_pool Sys
