lib/storage/freelist.ml: Int64 List Nv_nvmm
