lib/storage/pindex.mli: Nv_nvmm
