lib/storage/transient_pool.ml: Array Bytes Nv_nvmm
