lib/storage/prow.mli: Nv_nvmm Vptr
