lib/storage/log_region.ml: Bytes Int32 Int64 List Nv_nvmm
