lib/storage/bump.mli: Nv_nvmm
