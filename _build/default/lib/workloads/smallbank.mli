(** SmallBank OLTP benchmark (paper section 6.2.2, Table 2).

    Two tables — checking and savings — with 8-byte balances (fully
    inlineable in 256-byte persistent rows). Five transaction types are
    chosen uniformly; 90% of transactions target a hotspot subset of
    customers, and the low/high contention configurations differ in the
    hotspot size. TransactSavings and WriteCheck abort on insufficient
    funds at a ~10% rate, exercising the user-level abort path
    (section 4.6).

    Paper scale is 18M customers (180M for SmallBank-large); here both
    are divided by ~1000, keeping the hotspot-to-dataset ratios. *)

type config = {
  customers : int;
  hot_customers : int;
  hot_probability : float;  (** fraction of txns that target the hotspot (0.9) *)
  abort_probability : float;  (** insufficient-funds rate for the 2 abortable types *)
}

val default : config
(** 18,000 customers, low contention (1,000 hot). *)

val large : config -> config
(** 10x customers (SmallBank-large). *)

val with_contention : [ `Low | `High ] -> config -> config
(** Low: hotspot = customers/18 (the paper's 1M-of-18M ratio); high:
    hotspot = customers/360 — scaled so hot rows see a paper-like
    number of updates per (smaller) epoch. *)

val checking_table : int
val savings_table : int

val make : config -> Workload.t
