(** YCSB microbenchmark, Caracal-style (paper section 6.2.1, Table 1).

    One table; each transaction groups 10 read-modify-write operations
    to unique keys. The contention knob designates 256 rows as "hot"
    and draws a configurable number of each transaction's 10 keys from
    the hot set; remaining keys are uniform over the whole table.
    Each write rewrites the row value with its first [update_bytes]
    bytes replaced.

    Paper configurations (dataset sizes here are scaled by ~1/80; the
    contention and hot-set ratios are preserved — see DESIGN.md):
    - default: 1000-byte values (values live in the persistent value
      pool; rows cannot inline them at 256-byte row size);
    - YCSB-smallrow: 64-byte values, fully rewritten (inlineable);
    - YCSB-large: 4x the rows. *)

type distribution =
  | Hotspot  (** the paper's contention knob: k-of-10 keys from a hot set *)
  | Zipfian of float  (** classic YCSB skew (theta, typically 0.99) *)

type config = {
  rows : int;
  value_size : int;
  update_bytes : int;  (** prefix rewritten by each write *)
  hot_rows : int;  (** size of the hot set (paper: 256) *)
  hot_per_txn : int;  (** how many of the 10 keys are hot: 0 / 4 / 7 *)
  ops_per_txn : int;
  distribution : distribution;
}

val default : config
(** 50k rows, 1000-byte values, 100-byte updates, low contention. *)

val smallrow : config -> config
(** 64-byte values rewritten entirely. *)

val large : config -> config
(** 4x the rows. *)

val with_contention : [ `Low | `Medium | `High ] -> config -> config
(** 0, 4 or 7 of the 10 keys hot (Table 1). *)

val zipfian : theta:float -> config -> config
(** Replace the hotspot knob with classic YCSB Zipfian key selection. *)

val make : config -> Workload.t
