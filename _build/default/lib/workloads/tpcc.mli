(** TPC-C benchmark, Caracal-style (paper sections 6.2.3, Table 3).

    Five transaction types over nine tables with the standard 45/43/4/4/4
    mix. Two Caracal modifications for deterministic execution are
    reproduced faithfully:
    - Payment takes the customer id as an input (no name lookup);
    - NewOrder draws its order id from a persistent per-district atomic
      counter during the insert step ([Txn.insert_gen]) instead of
      incrementing a District field — which makes TPC-C not fully
      deterministic across replays, so the workload sets
      [revert_on_recovery] and the engine persists counters per epoch
      and reverts crashed-epoch writes before replay (section 6.2.3).

    Delivery's write set depends on rows inserted in the same epoch
    (the oldest undelivered order), so it is declared with
    [Txn.dynamic_write_set], exercising Caracal's two-step
    initialization phase.

    Deviations from full TPC-C, documented in DESIGN.md: tables start
    without the 3000 pre-loaded orders per district; OrderStatus uses a
    preloaded last-order side table instead of a customer secondary
    index; record payloads are compacted so they inline in 256-byte
    rows (the paper observes TPC-C values are almost all inlineable). *)

type config = {
  warehouses : int;
  districts : int;  (** per warehouse; TPC-C standard 10 *)
  customers_per_district : int;
  items : int;
  max_order_lines : int;  (** 5..15 in standard TPC-C *)
  invalid_item_rate : float;  (** NewOrder user-abort rate (1%) *)
}

val default : config
(** 8 warehouses (the scaled "low contention" setting). *)

val with_contention : [ `Low | `High ] -> config -> config
(** Low: 8 warehouses; high: 1 warehouse (Table 3). *)

(** Table ids. *)

val warehouse_t : int
val district_t : int
val customer_t : int
val item_t : int
val stock_t : int
val order_t : int
val new_order_t : int
val order_line_t : int
val history_t : int
val last_order_t : int

val make : config -> Workload.t

(** Key helpers (exposed for tests). *)

val customer_key : w:int -> d:int -> c:int -> int64
val order_key : w:int -> d:int -> o:int -> int64
val order_line_key : w:int -> d:int -> o:int -> line:int -> int64
val stock_key : w:int -> i:int -> int64
