lib/workloads/smallbank.mli: Workload
