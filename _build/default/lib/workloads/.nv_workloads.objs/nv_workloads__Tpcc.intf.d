lib/workloads/tpcc.mli: Workload
