lib/workloads/ycsb.ml: Array Buffer Bytes Char Hashtbl Int64 Nv_util Nvcaracal Printf Seq Workload
