lib/workloads/ycsb.mli: Workload
