lib/workloads/tpcc.ml: Array Buffer Bytes Char Fun Hashtbl Int32 Int64 List Nv_util Nvcaracal Printf Seq Workload
