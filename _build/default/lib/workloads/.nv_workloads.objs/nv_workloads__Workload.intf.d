lib/workloads/workload.mli: Nv_util Nvcaracal Seq
