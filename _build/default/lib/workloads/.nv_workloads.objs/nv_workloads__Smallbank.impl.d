lib/workloads/smallbank.ml: Array Buffer Bytes Char Int64 List Nv_util Nvcaracal Printf Seq Workload
