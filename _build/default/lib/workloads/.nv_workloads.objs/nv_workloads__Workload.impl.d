lib/workloads/workload.ml: Nv_util Nvcaracal Seq
