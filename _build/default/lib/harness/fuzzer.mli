(** Randomized crash-recovery fuzzing.

    Each iteration builds a database from a randomly-chosen workload
    and configuration (design toggles, index implementation, persistent
    index on/off), runs a few epochs, injects a crash at a random phase
    of a random epoch with a random crash image, recovers, and compares
    the recovered state — table by table — against an oracle database
    that executed the same batches without crashing. Any mismatch is a
    correctness bug.

    Exposed as `nvdb fuzz`; the test suite runs a handful of
    iterations, the CLI as many as you like. *)

type outcome = {
  iterations : int;
  crashes_injected : int;
  replays : int;  (** iterations whose crashed epoch was replayed *)
  failures : string list;  (** human-readable mismatch descriptions *)
}

val run : seed:int -> iterations:int -> ?log:(string -> unit) -> unit -> outcome
(** Deterministic for a given [seed]. [log] receives one line per
    iteration. *)
