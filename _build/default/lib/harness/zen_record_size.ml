(* Re-export Zen's record header size so the runner can compute
   Table 4's "optimal" record sizes without depending on store
   internals elsewhere. *)
let header = Nv_zen.Zen_store.header_bytes
