let print ppf ~title ~header rows =
  let all = header :: rows in
  let ncols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let widths = Array.make ncols 0 in
  List.iter
    (List.iteri (fun i cell -> if String.length cell > widths.(i) then widths.(i) <- String.length cell))
    all;
  let pad i cell = cell ^ String.make (widths.(i) - String.length cell) ' ' in
  let line r = String.concat "  " (List.mapi pad r) in
  let rule =
    String.concat "--" (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  Format.fprintf ppf "@.== %s ==@.%s@.%s@." title (line header) rule;
  List.iter (fun r -> Format.fprintf ppf "%s@." (line r)) rows;
  Format.fprintf ppf "@."

let mtps v = Printf.sprintf "%.3f Mtxn/s" (v /. 1e6)
let pct v = Printf.sprintf "%.1f%%" (v *. 100.0)

let bytes n =
  if n >= 1 lsl 30 then Printf.sprintf "%.2f GiB" (float_of_int n /. float_of_int (1 lsl 30))
  else if n >= 1 lsl 20 then Printf.sprintf "%.2f MiB" (float_of_int n /. float_of_int (1 lsl 20))
  else if n >= 1 lsl 10 then Printf.sprintf "%.2f KiB" (float_of_int n /. float_of_int (1 lsl 10))
  else Printf.sprintf "%d B" n

let ms v = Printf.sprintf "%.2f ms" (v /. 1e6)
