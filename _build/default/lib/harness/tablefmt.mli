(** Minimal aligned-column text tables for experiment output. *)

val print :
  Format.formatter -> title:string -> header:string list -> string list list -> unit
(** Render a titled table; column widths adapt to content. *)

val mtps : float -> string
(** Format a throughput (txns per simulated second) as "N.NN Mtxn/s". *)

val pct : float -> string
(** Format a fraction as a percentage. *)

val bytes : int -> string
(** Human-readable byte count. *)

val ms : float -> string
(** Nanoseconds rendered as milliseconds. *)
