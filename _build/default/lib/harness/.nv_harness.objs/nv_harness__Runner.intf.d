lib/harness/runner.mli: Nv_util Nv_workloads Nvcaracal
