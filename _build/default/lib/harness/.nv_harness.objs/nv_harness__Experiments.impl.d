lib/harness/experiments.ml: Array List Nv_util Nv_workloads Nv_zen Nvcaracal Printf Runner Tablefmt
