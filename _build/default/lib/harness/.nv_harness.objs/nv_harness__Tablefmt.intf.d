lib/harness/tablefmt.mli: Format
