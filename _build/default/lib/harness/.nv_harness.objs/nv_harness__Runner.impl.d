lib/harness/runner.ml: Array List Nv_nvmm Nv_storage Nv_util Nv_workloads Nv_zen Nvcaracal Zen_record_size
