lib/harness/tablefmt.ml: Array Format List Printf String
