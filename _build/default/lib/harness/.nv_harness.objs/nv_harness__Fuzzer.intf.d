lib/harness/fuzzer.mli:
