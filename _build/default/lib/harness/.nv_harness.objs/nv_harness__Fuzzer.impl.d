lib/harness/fuzzer.ml: Array Bytes Int64 List Nv_util Nv_workloads Nvcaracal Printf Seq
