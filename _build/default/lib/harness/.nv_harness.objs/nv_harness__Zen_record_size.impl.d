lib/harness/zen_record_size.ml: Nv_zen
