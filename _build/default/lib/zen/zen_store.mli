(** Zen-style NVMM record store (the comparator of paper section 6.3,
    after Liu et al., VLDB 2021).

    Zen is a log-free OLTP engine: every committed update writes a new
    fixed-size record directly to NVMM with per-record commit metadata;
    there is no separate log and no checkpoint phase. Free slots are
    tracked in DRAM free lists (one of Zen's costs the paper contrasts
    with the dual-version design), and recovery rebuilds everything by
    scanning the record arenas — more than once.

    Record layout ([record_size] total):
    {v
    off  0  key      (int64)
    off  8  table    (int32)
    off 12  len      (int32)
    off 16  version  (int64)  commit counter; 0 = never written
    off 24  value    (record_size - 24 bytes)
    v} *)

type t

val header_bytes : int

val reserve :
  Nv_nvmm.Layout.builder -> cores:int -> slots_per_core:int -> record_size:int ->
  (int * int) array * int
(** Returns per-core (arena_off, slots) and the record size echo;
    feed to [attach]. *)

val attach :
  Nv_nvmm.Pmem.t -> per_core:(int * int) array -> record_size:int -> t

val record_size : t -> int

val alloc : t -> Nv_nvmm.Stats.t -> core:int -> int
(** A free record slot: from the core's DRAM free list, else bumped.
    Raises [Failure] when the arena is full. *)

val free : t -> core:int -> int -> unit
(** Return a slot to the core's DRAM free list (no NVMM traffic). *)

val write_record :
  t -> Nv_nvmm.Stats.t -> off:int -> key:int64 -> table:int -> version:int64 ->
  data:bytes -> unit
(** Persist one record: header + value, charged as NVMM block writes,
    written back immediately. The caller fences once per commit. *)

val read_value : t -> Nv_nvmm.Stats.t -> off:int -> bytes
(** Value bytes of a record, charging header + value blocks. *)

val peek : t -> off:int -> int64 * int * int64 * int
(** (key, table, version, len) without charging (recovery helpers
    charge their own scan reads). *)

val invalidate : t -> Nv_nvmm.Stats.t -> off:int -> unit
(** Clear a record's version (used when a row is deleted so recovery
    does not resurrect it). *)

val iter_slots : t -> f:(off:int -> unit) -> unit
(** Every slot of every arena, written or not — Zen's recovery scan
    walks the whole arena, which is why its recovery cost scales with
    capacity (paper section 6.8). *)

val set_fully_bumped : t -> unit
(** Mark every arena fully bumped (recovery claims all slots via the
    rebuilt free lists). *)

val bumped_slots : t -> int
val free_list_slots : t -> int
val nvmm_bytes : t -> int
val dram_freelist_bytes : t -> int
(** DRAM consumed by the free lists (a Zen overhead the paper notes). *)
