module Pmem = Nv_nvmm.Pmem
module Stats = Nv_nvmm.Stats
module Layout = Nv_nvmm.Layout

let header_bytes = 24

type core_state = {
  arena_off : int;
  slots : int;
  mutable bump : int;
  mutable free : int list;
  mutable free_len : int;
}

type t = { pmem : Pmem.t; record_size : int; per_core : core_state array }

let reserve builder ~cores ~slots_per_core ~record_size =
  assert (record_size > header_bytes);
  let per_core =
    Array.init cores (fun c ->
        let r =
          Layout.reserve builder
            ~name:(Printf.sprintf "zen.%d.arena" c)
            ~len:(slots_per_core * record_size) ()
        in
        (r.Layout.off, slots_per_core))
  in
  (per_core, record_size)

let attach pmem ~per_core ~record_size =
  {
    pmem;
    record_size;
    per_core =
      Array.map
        (fun (arena_off, slots) -> { arena_off; slots; bump = 0; free = []; free_len = 0 })
        per_core;
  }

let record_size t = t.record_size

let alloc t stats ~core =
  let cs = t.per_core.(core) in
  Stats.dram_read stats ();
  match cs.free with
  | off :: rest ->
      cs.free <- rest;
      cs.free_len <- cs.free_len - 1;
      off
  | [] ->
      if cs.bump >= cs.slots then failwith "Zen_store.alloc: arena full";
      let off = cs.arena_off + (cs.bump * t.record_size) in
      cs.bump <- cs.bump + 1;
      off

let free t ~core off =
  let cs = t.per_core.(core) in
  cs.free <- off :: cs.free;
  cs.free_len <- cs.free_len + 1

let write_record t stats ~off ~key ~table ~version ~data =
  let len = Bytes.length data in
  assert (len <= t.record_size - header_bytes);
  Pmem.set_i64 t.pmem off key;
  Pmem.set_i32 t.pmem (off + 8) (Int32.of_int table);
  Pmem.set_i32 t.pmem (off + 12) (Int32.of_int len);
  Pmem.set_i64 t.pmem (off + 16) version;
  Pmem.blit_to t.pmem ~src:data ~src_off:0 ~dst_off:(off + header_bytes) ~len;
  Pmem.charge_write t.pmem stats ~off ~len:(header_bytes + len);
  Pmem.flush t.pmem stats ~off ~len:(header_bytes + len)

let read_value t stats ~off =
  let len = Int32.to_int (Pmem.get_i32 t.pmem (off + 12)) in
  Pmem.charge_read t.pmem stats ~off ~len:(header_bytes + len);
  Pmem.read_bytes t.pmem ~off:(off + header_bytes) ~len

let peek t ~off =
  ( Pmem.get_i64 t.pmem off,
    Int32.to_int (Pmem.get_i32 t.pmem (off + 8)),
    Pmem.get_i64 t.pmem (off + 16),
    Int32.to_int (Pmem.get_i32 t.pmem (off + 12)) )

let invalidate t stats ~off =
  Pmem.set_i64 t.pmem (off + 16) 0L;
  Pmem.charge_write t.pmem stats ~off ~len:8;
  Pmem.flush t.pmem stats ~off ~len:8

let iter_slots t ~f =
  Array.iter
    (fun cs ->
      for i = 0 to cs.slots - 1 do
        f ~off:(cs.arena_off + (i * t.record_size))
      done)
    t.per_core

let set_fully_bumped t = Array.iter (fun cs -> cs.bump <- cs.slots) t.per_core

let bumped_slots t = Array.fold_left (fun acc cs -> acc + cs.bump) 0 t.per_core
let free_list_slots t = Array.fold_left (fun acc cs -> acc + cs.free_len) 0 t.per_core

let nvmm_bytes t =
  Array.fold_left (fun acc cs -> acc + (cs.slots * t.record_size)) 0 t.per_core

let dram_freelist_bytes t = free_list_slots t * 16
