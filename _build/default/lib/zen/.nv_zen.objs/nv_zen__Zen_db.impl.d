lib/zen/zen_db.ml: Array Bytes Float Hashtbl Int64 List Nv_index Nv_nvmm Nvcaracal Option Seq Zen_store
