lib/zen/zen_store.mli: Nv_nvmm
