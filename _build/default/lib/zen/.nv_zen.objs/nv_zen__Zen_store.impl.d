lib/zen/zen_store.ml: Array Bytes Int32 Nv_nvmm Printf
