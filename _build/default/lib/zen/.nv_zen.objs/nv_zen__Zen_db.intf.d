lib/zen/zen_db.mli: Nv_nvmm Nvcaracal Seq
