(** Deterministic pseudo-random number generation.

    All randomness in the system flows through this module so that every
    run — including crash-injection tests — is bit-reproducible from a
    seed. The generator is splitmix64, which has a 64-bit state, passes
    BigCrush, and supports cheap stream splitting. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a generator from an integer seed. Equal seeds
    produce equal streams. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t].
    Used to give each simulated core / each epoch its own stream. *)

val copy : t -> t
(** [copy t] duplicates the current state without advancing it. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive.
    Requires [lo <= hi]. *)

val float : t -> float
(** Uniform float in [\[0, 1)]. *)

val bool : t -> bool
(** Fair coin. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
