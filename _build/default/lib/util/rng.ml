type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix64 (Int64.of_int seed) }

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = next_int64 t }
let copy t = { state = t.state }

let int t bound =
  assert (bound > 0);
  (* Rejection-free modulo is fine here: bound is tiny versus 2^62 and any
     bias is far below what the statistical tests can observe. *)
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next_int64 t) 2) (Int64.of_int bound))

let int_in t lo hi =
  assert (lo <= hi);
  lo + int t (hi - lo + 1)

let float t =
  let bits53 = Int64.to_int (Int64.shift_right_logical (next_int64 t) 11) in
  float_of_int bits53 *. (1.0 /. 9007199254740992.0)

let bool t = Int64.logand (next_int64 t) 1L = 1L

let pick t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
