(** FNV-1a hashing for index keys.

    A fixed, platform-independent hash keeps index layouts (and therefore
    simulated memory-access patterns) identical across runs and machines. *)

val hash_int64 : int64 -> int
(** Hash a 64-bit key to a non-negative OCaml int. *)

val hash_int : int -> int
(** Hash a native int key to a non-negative OCaml int. *)

val hash_string : string -> int
(** Hash a string to a non-negative OCaml int. *)

val combine : int -> int -> int
(** Mix two hash values. *)
