type 'a entry = { prio : float; seq : int; value : 'a }

type 'a t = {
  mutable heap : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { heap = [||]; size = 0; next_seq = 0 }

let less a b = a.prio < b.prio || (a.prio = b.prio && a.seq < b.seq)

let grow t =
  let cap = Array.length t.heap in
  if t.size >= cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    let nh = Array.make ncap t.heap.(0) in
    Array.blit t.heap 0 nh 0 t.size;
    t.heap <- nh
  end

let push t ~prio value =
  let e = { prio; seq = t.next_seq; value } in
  t.next_seq <- t.next_seq + 1;
  if t.size = 0 && Array.length t.heap = 0 then t.heap <- Array.make 16 e;
  grow t;
  t.heap.(t.size) <- e;
  t.size <- t.size + 1;
  (* Sift up. *)
  let i = ref (t.size - 1) in
  while
    !i > 0
    &&
    let p = (!i - 1) / 2 in
    less t.heap.(!i) t.heap.(p)
  do
    let p = (!i - 1) / 2 in
    let tmp = t.heap.(p) in
    t.heap.(p) <- t.heap.(!i);
    t.heap.(!i) <- tmp;
    i := p
  done

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.heap.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.heap.(0) <- t.heap.(t.size);
      (* Sift down. *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < t.size && less t.heap.(l) t.heap.(!smallest) then smallest := l;
        if r < t.size && less t.heap.(r) t.heap.(!smallest) then smallest := r;
        if !smallest <> !i then begin
          let tmp = t.heap.(!smallest) in
          t.heap.(!smallest) <- t.heap.(!i);
          t.heap.(!i) <- tmp;
          i := !smallest
        end
        else continue := false
      done
    end;
    Some top.value
  end

let peek_prio t = if t.size = 0 then None else Some t.heap.(0).prio
let size t = t.size
let is_empty t = t.size = 0
