(** Zipfian key-popularity distribution.

    Used by the YCSB workload generator for skewed key selection. The
    sampler uses the rejection-inversion method of Hörmann and Derflinger,
    which needs O(1) setup and O(1) expected time per sample, so large
    keyspaces cost nothing to set up (unlike the classic YCSB generator
    that precomputes the full harmonic sum). *)

type t

val create : n:int -> theta:float -> t
(** [create ~n ~theta] prepares a sampler over ranks [\[0, n)] with skew
    exponent [theta >= 0]. [theta = 0.0] degenerates to uniform;
    YCSB's default skew is 0.99. Requires [n > 0]. *)

val sample : t -> Rng.t -> int
(** [sample t rng] draws a rank in [\[0, n)]; rank 0 is the most popular. *)

val n : t -> int
(** Size of the keyspace. *)
