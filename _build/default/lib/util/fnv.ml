let prime = 0x100000001B3L
let offset = 0xCBF29CE484222325L

let step h byte = Int64.mul (Int64.logxor h (Int64.of_int byte)) prime

let finish h =
  (* Mask to 62 bits so the result is a non-negative OCaml int. *)
  Int64.to_int (Int64.logand (Int64.shift_right_logical h 1) 0x3FFFFFFFFFFFFFFFL)

let hash_int64 k =
  let h = ref offset in
  for i = 0 to 7 do
    h := step !h (Int64.to_int (Int64.logand (Int64.shift_right_logical k (8 * i)) 0xFFL))
  done;
  finish !h

let hash_int k = hash_int64 (Int64.of_int k)

let hash_string s =
  let h = ref offset in
  String.iter (fun c -> h := step !h (Char.code c)) s;
  finish !h

let combine a b =
  (finish (step (step offset (a land 0xFF)) (b land 0xFF)) lxor (a * 31) lxor b)
  land 0x3FFFFFFFFFFFFFFF
