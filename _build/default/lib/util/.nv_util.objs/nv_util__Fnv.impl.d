lib/util/fnv.ml: Char Int64 String
