lib/util/fnv.mli:
