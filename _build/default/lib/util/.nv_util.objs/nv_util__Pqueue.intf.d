lib/util/pqueue.mli:
