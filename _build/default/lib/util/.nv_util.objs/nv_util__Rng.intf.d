lib/util/rng.mli:
