(** Binary min-heap priority queue.

    The discrete-event scheduler keeps pending core events here, ordered
    by (simulated time, tie-break sequence) so that runs are fully
    deterministic even when events share a timestamp. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> prio:float -> 'a -> unit
(** Insert with priority. Elements inserted earlier win ties. *)

val pop : 'a t -> 'a option
(** Remove and return the minimum, or [None] when empty. *)

val peek_prio : 'a t -> float option
(** Priority of the minimum without removing it. *)

val size : 'a t -> int
val is_empty : 'a t -> bool
