type t = {
  n : int;
  theta : float;
  (* Precomputed constants for rejection-inversion sampling
     (Hörmann & Derflinger 1996), valid for theta <> 1.0. *)
  q : float; (* 1 - theta *)
  h_x1 : float;
  h_n : float;
  s : float;
}

(* H(x) = integral of x^-theta: (x^(1-theta) - 1) / (1-theta). *)
let h q x = ((x ** q) -. 1.0) /. q
let h_inv q x = ((q *. x) +. 1.0) ** (1.0 /. q)

let create ~n ~theta =
  assert (n > 0);
  assert (theta >= 0.0);
  (* Avoid the theta = 1 singularity by nudging; the distribution is
     continuous in theta so the perturbation is invisible. *)
  let theta = if Float.abs (theta -. 1.0) < 1e-9 then 1.0 -. 1e-9 else theta in
  let q = 1.0 -. theta in
  {
    n;
    theta;
    q;
    h_x1 = h q 1.5 -. 1.0;
    h_n = h q (float_of_int n +. 0.5);
    s = 2.0 -. h_inv q (h q 2.5 -. (2.0 ** -.theta));
  }

let n t = t.n

let sample t rng =
  if t.theta = 0.0 then Rng.int rng t.n
  else begin
    let rec loop () =
      let u = t.h_x1 +. (Rng.float rng *. (t.h_n -. t.h_x1)) in
      let x = h_inv t.q u in
      let k = Float.round x in
      (* Accept k when u lies under the histogram bar for rank k. *)
      if u >= h t.q (k +. 0.5) -. (k ** -.t.theta) || k -. x <= t.s then
        int_of_float k
      else loop ()
    in
    let k = loop () in
    let k = if k < 1 then 1 else if k > t.n then t.n else k in
    k - 1
  end
