module Stats = Nv_nvmm.Stats

type 'a node = { key : int64; value : 'a; left : 'a node option; right : 'a node option; height : int }
type 'a t = { mutable root : 'a node option; mutable count : int }

let create () = { root = None; count = 0 }
let length t = t.count

let height = function None -> 0 | Some n -> n.height

let mk key value left right =
  { key; value; left; right; height = 1 + max (height left) (height right) }

let balance_factor n = height n.left - height n.right

let rotate_right n =
  match n.left with
  | None -> n
  | Some l -> mk l.key l.value l.left (Some (mk n.key n.value l.right n.right))

let rotate_left n =
  match n.right with
  | None -> n
  | Some r -> mk r.key r.value (Some (mk n.key n.value n.left r.left)) r.right

let rebalance n =
  let bf = balance_factor n in
  if bf > 1 then
    let n =
      match n.left with
      | Some l when balance_factor l < 0 -> mk n.key n.value (Some (rotate_left l)) n.right
      | _ -> n
    in
    rotate_right n
  else if bf < -1 then
    let n =
      match n.right with
      | Some r when balance_factor r > 0 -> mk n.key n.value n.left (Some (rotate_right r))
      | _ -> n
    in
    rotate_left n
  else n

let insert t stats key value =
  let added = ref false in
  let rec go = function
    | None ->
        Stats.dram_write stats ();
        added := true;
        mk key value None None
    | Some n ->
        Stats.dram_read stats ();
        if key < n.key then rebalance (mk n.key n.value (Some (go n.left)) n.right)
        else if key > n.key then rebalance (mk n.key n.value n.left (Some (go n.right)))
        else mk key value n.left n.right
  in
  t.root <- Some (go t.root);
  if !added then t.count <- t.count + 1

let find t stats key =
  let rec go = function
    | None -> None
    | Some n ->
        Stats.dram_read stats ();
        if key < n.key then go n.left else if key > n.key then go n.right else Some n.value
  in
  go t.root

let rec min_node n = match n.left with None -> n | Some l -> min_node l

let remove t stats key =
  let removed = ref false in
  let rec go = function
    | None -> None
    | Some n ->
        Stats.dram_read stats ();
        if key < n.key then Some (rebalance (mk n.key n.value (go n.left) n.right))
        else if key > n.key then Some (rebalance (mk n.key n.value n.left (go n.right)))
        else begin
          removed := true;
          Stats.dram_write stats ();
          match (n.left, n.right) with
          | None, r -> r
          | l, None -> l
          | l, Some r ->
              let succ = min_node r in
              let rec drop_min m =
                match m.left with
                | None -> m.right
                | Some l2 -> Some (rebalance (mk m.key m.value (drop_min l2) m.right))
              in
              Some (rebalance (mk succ.key succ.value l (drop_min r)))
        end
  in
  t.root <- go t.root;
  if !removed then t.count <- t.count - 1

let fold_range t stats ~lo ~hi ~init ~f =
  let rec go acc = function
    | None -> acc
    | Some n ->
        Stats.dram_read stats ();
        let acc = if n.key > lo then go acc n.left else acc in
        let acc = if n.key >= lo && n.key <= hi then f acc n.key n.value else acc in
        if n.key < hi then go acc n.right else acc
  in
  go init t.root

let max_below t stats bound =
  let rec go best = function
    | None -> best
    | Some n ->
        Stats.dram_read stats ();
        if n.key <= bound then go (Some (n.key, n.value)) n.right else go best n.left
  in
  go None t.root

let min_above t stats bound =
  let rec go best = function
    | None -> best
    | Some n ->
        Stats.dram_read stats ();
        if n.key >= bound then go (Some (n.key, n.value)) n.left else go best n.right
  in
  go None t.root

let iter t f =
  let rec go = function
    | None -> ()
    | Some n ->
        go n.left;
        f n.key n.value;
        go n.right
  in
  go t.root

let dram_bytes t = t.count * 40

let check_balanced t =
  let rec go = function
    | None -> (true, 0)
    | Some n ->
        let okl, hl = go n.left and okr, hr = go n.right in
        (okl && okr && abs (hl - hr) <= 1 && n.height = 1 + max hl hr, 1 + max hl hr)
  in
  fst (go t.root)
