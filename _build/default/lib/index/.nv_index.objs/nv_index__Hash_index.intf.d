lib/index/hash_index.mli: Nv_nvmm
