lib/index/btree_index.ml: Array Int64 List Nv_nvmm Option
