lib/index/btree_index.mli: Nv_nvmm
