lib/index/ordered_index.mli: Nv_nvmm
