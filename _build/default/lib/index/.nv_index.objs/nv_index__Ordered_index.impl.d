lib/index/ordered_index.ml: Nv_nvmm
