lib/index/hash_index.ml: Array Nv_nvmm Nv_util
