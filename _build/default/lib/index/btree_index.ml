module Stats = Nv_nvmm.Stats

let fanout = 32

type 'a node =
  | Leaf of 'a leaf
  | Inner of 'a inner

and 'a leaf = {
  mutable lkeys : int64 array;
  mutable lvals : 'a option array;
  mutable ln : int;
  mutable next : 'a leaf option;
}

and 'a inner = {
  mutable ikeys : int64 array; (* separators: child i holds keys < ikeys.(i) *)
  mutable children : 'a node array;
  mutable icount : int; (* number of children; separators = icount - 1 *)
}

type 'a t = { mutable root : 'a node; mutable count : int }

let new_leaf () =
  { lkeys = Array.make fanout 0L; lvals = Array.make fanout None; ln = 0; next = None }

let create () = { root = Leaf (new_leaf ()); count = 0 }
let length t = t.count

(* A node visit costs ~3 cache lines (binary search over a wide node). *)
let touch stats = Stats.dram_read stats ~lines:3 ()

(* Index of the first key >= [key] in a sorted prefix. *)
let lower_bound keys n key =
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Int64.compare keys.(mid) key < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

(* Child to descend into for [key]. *)
let child_index (i : 'a inner) key =
  let rec go j = if j < i.icount - 1 && Int64.compare key i.ikeys.(j) >= 0 then go (j + 1) else j in
  go 0

let rec find_leaf stats node key =
  touch stats;
  match node with
  | Leaf l -> l
  | Inner i -> find_leaf stats i.children.(child_index i key) key

let find t stats key =
  let l = find_leaf stats t.root key in
  let pos = lower_bound l.lkeys l.ln key in
  if pos < l.ln && l.lkeys.(pos) = key then l.lvals.(pos) else None

(* Split a full leaf, returning (separator, new right leaf). *)
let split_leaf (l : 'a leaf) =
  let half = fanout / 2 in
  let r = new_leaf () in
  Array.blit l.lkeys half r.lkeys 0 (fanout - half);
  Array.blit l.lvals half r.lvals 0 (fanout - half);
  r.ln <- fanout - half;
  (* Clear moved slots so values are not retained by the old leaf. *)
  Array.fill l.lvals half (fanout - half) None;
  l.ln <- half;
  r.next <- l.next;
  l.next <- Some r;
  (r.lkeys.(0), r)

let split_inner (i : 'a inner) =
  let half = i.icount / 2 in
  let sep = i.ikeys.(half - 1) in
  let r =
    {
      ikeys = Array.make fanout 0L;
      children = Array.make (fanout + 1) i.children.(0);
      icount = i.icount - half;
    }
  in
  Array.blit i.ikeys half r.ikeys 0 (i.icount - half - 1);
  Array.blit i.children half r.children 0 (i.icount - half);
  i.icount <- half;
  (sep, r)

(* Insert into the subtree; returns (sep, right) when the node split. *)
let rec insert_node t stats node key value =
  touch stats;
  match node with
  | Leaf l ->
      let pos = lower_bound l.lkeys l.ln key in
      if pos < l.ln && l.lkeys.(pos) = key then begin
        l.lvals.(pos) <- Some value;
        None
      end
      else begin
        if l.ln = fanout then begin
          (* Split first, then insert into the proper half. *)
          let sep, r = split_leaf l in
          let target = if Int64.compare key sep >= 0 then r else l in
          let pos = lower_bound target.lkeys target.ln key in
          Array.blit target.lkeys pos target.lkeys (pos + 1) (target.ln - pos);
          Array.blit target.lvals pos target.lvals (pos + 1) (target.ln - pos);
          target.lkeys.(pos) <- key;
          target.lvals.(pos) <- Some value;
          target.ln <- target.ln + 1;
          t.count <- t.count + 1;
          Stats.dram_write stats ~lines:3 ();
          Some (sep, Leaf r)
        end
        else begin
          Array.blit l.lkeys pos l.lkeys (pos + 1) (l.ln - pos);
          Array.blit l.lvals pos l.lvals (pos + 1) (l.ln - pos);
          l.lkeys.(pos) <- key;
          l.lvals.(pos) <- Some value;
          l.ln <- l.ln + 1;
          t.count <- t.count + 1;
          Stats.dram_write stats ();
          None
        end
      end
  | Inner i -> (
      let ci = child_index i key in
      match insert_node t stats i.children.(ci) key value with
      | None -> None
      | Some (sep, right) ->
          if i.icount <= fanout then begin
            (* Make room for the new child at ci+1. *)
            Array.blit i.ikeys ci i.ikeys (ci + 1) (i.icount - 1 - ci);
            Array.blit i.children (ci + 1) i.children (ci + 2) (i.icount - ci - 1);
            i.ikeys.(ci) <- sep;
            i.children.(ci + 1) <- right;
            i.icount <- i.icount + 1;
            if i.icount > fanout then begin
              let sep', r = split_inner i in
              Some (sep', Inner r)
            end
            else None
          end
          else assert false)

let insert t stats key value =
  match insert_node t stats t.root key value with
  | None -> ()
  | Some (sep, right) ->
      let root =
        {
          ikeys = Array.make fanout 0L;
          children = Array.make (fanout + 1) t.root;
          icount = 2;
        }
      in
      root.ikeys.(0) <- sep;
      root.children.(0) <- t.root;
      root.children.(1) <- right;
      t.root <- Inner root

let remove t stats key =
  let l = find_leaf stats t.root key in
  let pos = lower_bound l.lkeys l.ln key in
  if pos < l.ln && l.lkeys.(pos) = key then begin
    Array.blit l.lkeys (pos + 1) l.lkeys pos (l.ln - pos - 1);
    Array.blit l.lvals (pos + 1) l.lvals pos (l.ln - pos - 1);
    l.ln <- l.ln - 1;
    l.lvals.(l.ln) <- None;
    t.count <- t.count - 1;
    Stats.dram_write stats ()
  end

let fold_range t stats ~lo ~hi ~init ~f =
  let rec walk (l : 'a leaf) acc =
    touch stats;
    let rec entries pos acc =
      if pos >= l.ln then (acc, false)
      else if Int64.compare l.lkeys.(pos) hi > 0 then (acc, true)
      else
        let acc =
          if Int64.compare l.lkeys.(pos) lo >= 0 then
            f acc l.lkeys.(pos) (Option.get l.lvals.(pos))
          else acc
        in
        entries (pos + 1) acc
    in
    let acc, stop = entries 0 acc in
    if stop then acc else match l.next with None -> acc | Some n -> walk n acc
  in
  walk (find_leaf stats t.root lo) init

exception Found_entry

let min_above t stats bound =
  let result = ref None in
  (try
     fold_range t stats ~lo:bound ~hi:Int64.max_int ~init:() ~f:(fun () k v ->
         result := Some (k, v);
         raise Found_entry)
   with Found_entry -> ());
  !result

(* Rightmost entry of a subtree. *)
let rec max_entry stats node =
  touch stats;
  match node with
  | Leaf l -> if l.ln = 0 then None else Some (l.lkeys.(l.ln - 1), Option.get l.lvals.(l.ln - 1))
  | Inner i ->
      let rec go j = if j < 0 then None else
        match max_entry stats i.children.(j) with
        | Some _ as r -> r
        | None -> go (j - 1)
      in
      go (i.icount - 1)

let max_below t stats bound =
  (* Descend tracking left-sibling subtrees for fallback when the
     chosen path holds nothing <= bound. *)
  let rec go node fallback =
    touch stats;
    match node with
    | Leaf l ->
        let pos = lower_bound l.lkeys l.ln (Int64.add bound 1L) in
        if pos > 0 then Some (l.lkeys.(pos - 1), Option.get l.lvals.(pos - 1))
        else
          let rec try_fallback = function
            | [] -> None
            | n :: rest -> (
                match max_entry stats n with Some _ as r -> r | None -> try_fallback rest)
          in
          try_fallback fallback
    | Inner i ->
        let ci = child_index i bound in
        (* Nearer siblings first. *)
        let fb = List.init ci (fun j -> i.children.(ci - 1 - j)) @ fallback in
        go i.children.(ci) fb
  in
  if Int64.compare bound Int64.min_int < 0 then None else go t.root []

let iter t f =
  let rec leftmost = function Leaf l -> l | Inner i -> leftmost i.children.(0) in
  let rec walk (l : 'a leaf) =
    for pos = 0 to l.ln - 1 do
      f l.lkeys.(pos) (Option.get l.lvals.(pos))
    done;
    match l.next with None -> () | Some n -> walk n
  in
  walk (leftmost t.root)

let dram_bytes t =
  let rec size = function
    | Leaf _ -> (fanout * 16) + 32
    | Inner i ->
        let s = ref ((fanout * 16) + 32) in
        for j = 0 to i.icount - 1 do
          s := !s + size i.children.(j)
        done;
        !s
  in
  size t.root

let check_invariants t =
  let ok = ref true in
  (* Leaves sorted and chained in order; count matches. *)
  let seen = ref 0 in
  let last = ref Int64.min_int in
  let first = ref true in
  iter t (fun k _ ->
      incr seen;
      if (not !first) && Int64.compare k !last <= 0 then ok := false;
      first := false;
      last := k);
  if !seen <> t.count then ok := false;
  (* Separators bound their subtrees. *)
  let rec bounds node lo hi =
    match node with
    | Leaf l ->
        for pos = 0 to l.ln - 1 do
          let k = l.lkeys.(pos) in
          if Int64.compare k lo < 0 || (hi <> Int64.max_int && Int64.compare k hi >= 0) then
            ok := false
        done
    | Inner i ->
        for j = 0 to i.icount - 1 do
          let clo = if j = 0 then lo else i.ikeys.(j - 1) in
          let chi = if j = i.icount - 1 then hi else i.ikeys.(j) in
          bounds i.children.(j) clo chi
        done
  in
  bounds t.root Int64.min_int Int64.max_int;
  !ok
