(** DRAM ordered index: an AVL tree over int64 keys supporting range
    scans.

    TPC-C composes (warehouse, district, order, line) coordinates into
    ordered int64 keys and scans contiguous ranges (e.g. the order
    lines of an order, or a customer's latest order). Each node visit
    charges one DRAM cache-line read. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int

val insert : 'a t -> Nv_nvmm.Stats.t -> int64 -> 'a -> unit
(** Insert or replace. *)

val find : 'a t -> Nv_nvmm.Stats.t -> int64 -> 'a option
val remove : 'a t -> Nv_nvmm.Stats.t -> int64 -> unit

val fold_range :
  'a t -> Nv_nvmm.Stats.t -> lo:int64 -> hi:int64 -> init:'b -> f:('b -> int64 -> 'a -> 'b) -> 'b
(** Fold over entries with [lo <= key <= hi] in ascending key order. *)

val max_below : 'a t -> Nv_nvmm.Stats.t -> int64 -> (int64 * 'a) option
(** Greatest entry with key <= the bound (TPC-C "latest order" lookup). *)

val min_above : 'a t -> Nv_nvmm.Stats.t -> int64 -> (int64 * 'a) option
(** Smallest entry with key >= the bound (TPC-C "oldest undelivered
    order" lookup). *)

val iter : 'a t -> (int64 -> 'a -> unit) -> unit
(** Uncharged in-order traversal. *)

val dram_bytes : 'a t -> int
(** Approximate footprint: five words per node. *)

val check_balanced : 'a t -> bool
(** AVL invariant check (tests). *)
