(** DRAM B+-tree index over int64 keys.

    A second ordered-index implementation with the same interface shape
    as {!Ordered_index}: Caracal's row index is a cache-efficient tree
    (Masstree); this B+-tree with wide nodes models its access pattern
    better than the AVL for large tables — fewer, wider node touches
    per lookup. Leaves are linked for cheap range scans.

    Charging: each node visited charges DRAM lines proportional to the
    node search (binary search over a 32-wide node touches ~3 lines). *)

type 'a t

val fanout : int
(** Keys per node (32). *)

val create : unit -> 'a t
val length : 'a t -> int

val insert : 'a t -> Nv_nvmm.Stats.t -> int64 -> 'a -> unit
(** Insert or replace. *)

val find : 'a t -> Nv_nvmm.Stats.t -> int64 -> 'a option

val remove : 'a t -> Nv_nvmm.Stats.t -> int64 -> unit
(** Lazy deletion: the key is removed from its leaf; leaves are merged
    only when empty. *)

val fold_range :
  'a t -> Nv_nvmm.Stats.t -> lo:int64 -> hi:int64 -> init:'b -> f:('b -> int64 -> 'a -> 'b) -> 'b
(** Ascending fold over [lo <= key <= hi] using the leaf chain. *)

val max_below : 'a t -> Nv_nvmm.Stats.t -> int64 -> (int64 * 'a) option
val min_above : 'a t -> Nv_nvmm.Stats.t -> int64 -> (int64 * 'a) option

val iter : 'a t -> (int64 -> 'a -> unit) -> unit
(** Uncharged ascending traversal. *)

val dram_bytes : 'a t -> int

val check_invariants : 'a t -> bool
(** Sorted leaves, correct separators, linked-leaf completeness. *)
