(** DRAM hash index: int64 keys to arbitrary row handles.

    The row index lives in DRAM (paper section 4) and is rebuilt during
    recovery by scanning the persistent rows. Open addressing with
    linear probing and tombstone deletion; every probe charges one DRAM
    cache-line read so index traffic shows up in the simulated clock. *)

type 'a t

val create : ?initial_capacity:int -> unit -> 'a t

val length : 'a t -> int

val find : 'a t -> Nv_nvmm.Stats.t -> int64 -> 'a option

val mem : 'a t -> Nv_nvmm.Stats.t -> int64 -> bool

val insert : 'a t -> Nv_nvmm.Stats.t -> int64 -> 'a -> unit
(** Insert or replace. *)

val remove : 'a t -> Nv_nvmm.Stats.t -> int64 -> unit
(** No-op if absent. *)

val iter : 'a t -> (int64 -> 'a -> unit) -> unit
(** Uncharged traversal (reporting / rebuild verification). *)

val dram_bytes : 'a t -> int
(** Approximate DRAM footprint of the table (Figure 8 reporting):
    16 bytes of key/tag plus one word of payload per slot. *)
