module Stats = Nv_nvmm.Stats

type slot_state = Empty | Tombstone | Full

type 'a t = {
  mutable keys : int64 array;
  mutable values : 'a option array;
  mutable state : slot_state array;
  mutable count : int; (* Full slots *)
  mutable occupied : int; (* Full + Tombstone *)
}

let create ?(initial_capacity = 64) () =
  let cap = max 8 initial_capacity in
  {
    keys = Array.make cap 0L;
    values = Array.make cap None;
    state = Array.make cap Empty;
    count = 0;
    occupied = 0;
  }

let length t = t.count

let probe_start t key = Nv_util.Fnv.hash_int64 key mod Array.length t.keys

let rec grow t =
  let old_keys = t.keys and old_values = t.values and old_state = t.state in
  let cap = Array.length old_keys * 2 in
  t.keys <- Array.make cap 0L;
  t.values <- Array.make cap None;
  t.state <- Array.make cap Empty;
  t.count <- 0;
  t.occupied <- 0;
  Array.iteri
    (fun i st ->
      match st with
      | Full -> insert_nocharge t old_keys.(i) old_values.(i)
      | Empty | Tombstone -> ())
    old_state

and insert_nocharge t key value =
  if (t.occupied + 1) * 4 > Array.length t.keys * 3 then grow t;
  let cap = Array.length t.keys in
  let rec loop i first_tomb =
    match t.state.(i) with
    | Empty ->
        let target = match first_tomb with Some j -> j | None -> i in
        let was_tomb = t.state.(target) = Tombstone in
        t.keys.(target) <- key;
        t.values.(target) <- value;
        t.state.(target) <- Full;
        t.count <- t.count + 1;
        if not was_tomb then t.occupied <- t.occupied + 1
    | Tombstone ->
        let first_tomb = match first_tomb with Some _ -> first_tomb | None -> Some i in
        loop ((i + 1) mod cap) first_tomb
    | Full ->
        if t.keys.(i) = key then t.values.(i) <- value
        else loop ((i + 1) mod cap) first_tomb
  in
  loop (probe_start t key) None

(* Find the slot holding [key]; charges one DRAM read per probe. *)
let find_slot t stats key =
  let cap = Array.length t.keys in
  let rec loop i n =
    Stats.dram_read stats ();
    if n > cap then None
    else
      match t.state.(i) with
      | Empty -> None
      | Tombstone -> loop ((i + 1) mod cap) (n + 1)
      | Full -> if t.keys.(i) = key then Some i else loop ((i + 1) mod cap) (n + 1)
  in
  loop (probe_start t key) 0

let find t stats key =
  match find_slot t stats key with Some i -> t.values.(i) | None -> None

let mem t stats key = find_slot t stats key <> None

let insert t stats key value =
  Stats.dram_write stats ();
  insert_nocharge t key (Some value)

let remove t stats key =
  match find_slot t stats key with
  | None -> ()
  | Some i ->
      Stats.dram_write stats ();
      t.state.(i) <- Tombstone;
      t.values.(i) <- None;
      t.count <- t.count - 1

let iter t f =
  Array.iteri
    (fun i st ->
      match (st, t.values.(i)) with
      | Full, Some v -> f t.keys.(i) v
      | Full, None -> assert false
      | (Empty | Tombstone), _ -> ())
    t.state

let dram_bytes t = Array.length t.keys * 24
