type mode = Fast | Crash_safe

let line_size = 64

(* Per-line persistence bookkeeping, present only while the line has
   unpersisted state. [persisted] is the content that survives a crash
   with certainty. [snapshots] records the line content after each store
   since [persisted], oldest first, so a crash may legally surface any
   prefix of the store sequence. [queued] is the content captured by the
   most recent clwb (plus how many snapshots existed at capture time),
   which becomes [persisted] at the next fence. *)
type line_state = {
  mutable persisted : bytes;
  mutable snapshots : bytes list; (* oldest first *)
  mutable queued : (bytes * int) option;
}

type t = {
  mode : mode;
  data : bytes; (* volatile view *)
  size : int;
  lines : (int, line_state) Hashtbl.t; (* keyed by line index *)
}

let create ?(mode = Fast) ~size () =
  { mode; data = Bytes.make size '\000'; size; lines = Hashtbl.create 4096 }

let mode t = t.mode
let size t = t.size

let copy_line t li =
  let b = Bytes.create line_size in
  Bytes.blit t.data (li * line_size) b 0 line_size;
  b

(* Record that bytes [off, off+len) were just stored. Must be called
   after the volatile view was updated. In Fast mode this is free. *)
let note_store t ~off ~len =
  if t.mode = Crash_safe && len > 0 then begin
    let first = off / line_size and last = (off + len - 1) / line_size in
    for li = first to last do
      (* [pre_store] has already captured the pre-store baseline, so the
         entry must exist; append the after-store snapshot. *)
      let st = Hashtbl.find t.lines li in
      st.snapshots <- st.snapshots @ [ copy_line t li ]
    done
  end

(* Capture the pre-store persisted baseline for lines about to be
   stored for the first time since they were last clean. Must be called
   BEFORE mutating the volatile view. *)
let pre_store t ~off ~len =
  if t.mode = Crash_safe && len > 0 then begin
    let first = off / line_size and last = (off + len - 1) / line_size in
    for li = first to last do
      match Hashtbl.find_opt t.lines li with
      | Some _ -> ()
      | None ->
          Hashtbl.add t.lines li { persisted = copy_line t li; snapshots = []; queued = None }
    done
  end

let check_bounds t off len =
  if off < 0 || len < 0 || off + len > t.size then
    invalid_arg (Printf.sprintf "Pmem: range [%d, %d) out of bounds (size %d)" off (off + len) len)

let get_i64 t off =
  assert (off land 7 = 0);
  check_bounds t off 8;
  Bytes.get_int64_le t.data off

let set_i64 t off v =
  assert (off land 7 = 0);
  check_bounds t off 8;
  pre_store t ~off ~len:8;
  Bytes.set_int64_le t.data off v;
  note_store t ~off ~len:8

let get_i32 t off =
  assert (off land 3 = 0);
  check_bounds t off 4;
  Bytes.get_int32_le t.data off

let set_i32 t off v =
  assert (off land 3 = 0);
  check_bounds t off 4;
  pre_store t ~off ~len:4;
  Bytes.set_int32_le t.data off v;
  note_store t ~off ~len:4

let get_u8 t off =
  check_bounds t off 1;
  Char.code (Bytes.get t.data off)

let set_u8 t off v =
  check_bounds t off 1;
  pre_store t ~off ~len:1;
  Bytes.set t.data off (Char.chr (v land 0xFF));
  note_store t ~off ~len:1

let read_bytes t ~off ~len =
  check_bounds t off len;
  Bytes.sub t.data off len

let blit_to t ~src ~src_off ~dst_off ~len =
  check_bounds t dst_off len;
  pre_store t ~off:dst_off ~len;
  Bytes.blit src src_off t.data dst_off len;
  note_store t ~off:dst_off ~len

let write_bytes t ~off b = blit_to t ~src:b ~src_off:0 ~dst_off:off ~len:(Bytes.length b)

let blit_from t ~src_off ~dst ~dst_off ~len =
  check_bounds t src_off len;
  Bytes.blit t.data src_off dst dst_off len

let fill t ~off ~len c =
  check_bounds t off len;
  pre_store t ~off ~len;
  Bytes.fill t.data off len c;
  note_store t ~off ~len

let flush t stats ~off ~len =
  if len > 0 then begin
    check_bounds t off len;
    let first = off / line_size and last = (off + len - 1) / line_size in
    for li = first to last do
      Stats.flush stats;
      if t.mode = Crash_safe then
        match Hashtbl.find_opt t.lines li with
        | None -> () (* clean line: clwb is a no-op *)
        | Some st -> st.queued <- Some (copy_line t li, List.length st.snapshots)
    done
  end

let fence t stats =
  Stats.fence stats;
  if t.mode = Crash_safe then begin
    let cleaned = ref [] in
    Hashtbl.iter
      (fun li st ->
        match st.queued with
        | None -> ()
        | Some (content, n_at_capture) ->
            st.persisted <- content;
            st.queued <- None;
            (* Drop snapshots that predate the captured content: they can
               no longer be crash states because something newer is
               guaranteed durable. *)
            let total = List.length st.snapshots in
            let keep = total - n_at_capture in
            st.snapshots <- (if keep <= 0 then [] else List.filteri (fun i _ -> i >= n_at_capture) st.snapshots);
            if st.snapshots = [] && Bytes.equal st.persisted (copy_line t li) then
              cleaned := li :: !cleaned)
      t.lines;
    List.iter (fun li -> Hashtbl.remove t.lines li) !cleaned
  end

let persist t stats ~off ~len =
  flush t stats ~off ~len;
  fence t stats

let charge_read _t stats ~off ~len = Stats.nvmm_read stats ~off ~len
let charge_write _t stats ~off ~len = Stats.nvmm_write stats ~off ~len
let charge_seq_write _t stats ~bytes = Stats.nvmm_seq_write stats ~bytes

let apply_crash_choice t li st idx =
  let content =
    if idx = 0 then st.persisted
    else List.nth st.snapshots (idx - 1)
  in
  Bytes.blit content 0 t.data (li * line_size) line_size

let finish_crash t = Hashtbl.reset t.lines

let require_crash_safe t =
  if t.mode <> Crash_safe then invalid_arg "Pmem.crash: region is in Fast mode"

let crash_with t ~choose =
  require_crash_safe t;
  (* Iterate in sorted line order so the callback sees a deterministic
     sequence regardless of hash-table iteration order. *)
  let lis = Hashtbl.fold (fun li _ acc -> li :: acc) t.lines [] in
  let lis = List.sort compare lis in
  List.iter
    (fun li ->
      let st = Hashtbl.find t.lines li in
      let options = 1 + List.length st.snapshots in
      let idx = choose ~line:li ~options in
      assert (idx >= 0 && idx < options);
      apply_crash_choice t li st idx)
    lis;
  finish_crash t

let crash t ~rng = crash_with t ~choose:(fun ~line:_ ~options -> Nv_util.Rng.int rng options)

let crash_all_persisted t = crash_with t ~choose:(fun ~line:_ ~options -> options - 1)

let dirty_line_count t = Hashtbl.length t.lines

let unpersisted_ranges t =
  let lis = Hashtbl.fold (fun li _ acc -> li :: acc) t.lines [] in
  List.map (fun li -> (li * line_size, line_size)) (List.sort compare lis)
