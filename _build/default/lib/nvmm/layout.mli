(** Static layout of named subregions within one pmem region.

    The database carves its pmem region into fixed subregions (metadata,
    input log, per-core row pools, per-core value pools, per-core free
    lists) at startup; because the layout is a pure function of the
    configuration, recovery computes identical offsets after a crash —
    the moral equivalent of the paper mapping NVMM to fixed addresses. *)

type builder
type region = { name : string; off : int; len : int }

val builder : unit -> builder

val reserve : builder -> name:string -> len:int -> ?align:int -> unit -> region
(** Reserve [len] bytes aligned to [align] (default 256). Regions are
    laid out in reservation order. *)

val total_size : builder -> int
(** Bytes consumed so far (the size to pass to {!Pmem.create}). *)

val regions : builder -> region list
(** All reservations, in order (for memory-consumption reports). *)

val find : builder -> string -> region
(** Lookup by name. Raises [Not_found] for unknown names. *)
