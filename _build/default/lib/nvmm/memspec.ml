type t = {
  dram_read_ns : float;
  dram_write_ns : float;
  nvmm_read_block_ns : float;
  nvmm_write_block_ns : float;
  nvmm_seq_write_ns_per_byte : float;
  flush_ns : float;
  fence_ns : float;
  compute_op_ns : float;
  cache_line : int;
  nvmm_block : int;
}

let default =
  {
    (* Engine-internal DRAM structure accesses are dominated by CPU
       cache hits; 20 ns per touched line is the effective cost. NVMM
       block costs anchor to DRAM *media* cost (~93 ns per random
       256 B access under load) times the paper's measured throughput
       ratios (3.2x reads, 11.9x writes). A persisting fence (clwb +
       sfence reaching the Optane media) stalls ~400 ns. *)
    dram_read_ns = 20.0;
    dram_write_ns = 20.0;
    nvmm_read_block_ns = 93.0 *. 3.2;
    nvmm_write_block_ns = 93.0 *. 11.9;
    (* Log appends are clwb'd at 64-byte-line granularity, far below
       Optane's peak streaming rate: ~330 MB/s effective. *)
    nvmm_seq_write_ns_per_byte = 3.0;
    flush_ns = 15.0;
    fence_ns = 400.0;
    compute_op_ns = 25.0;
    cache_line = 64;
    nvmm_block = 256;
  }

let dram_only =
  {
    default with
    (* Block-sized data accesses at DRAM media cost; no persistence
       instructions. *)
    nvmm_read_block_ns = 93.0;
    nvmm_write_block_ns = 93.0;
    nvmm_seq_write_ns_per_byte = 0.05;
    flush_ns = 0.0;
    fence_ns = 0.0;
  }

let ranges_touched ~granularity ~off ~len =
  if len <= 0 then 0
  else
    let first = off / granularity in
    let last = (off + len - 1) / granularity in
    last - first + 1

let blocks_touched t ~off ~len = ranges_touched ~granularity:t.nvmm_block ~off ~len
let lines_touched t ~off ~len = ranges_touched ~granularity:t.cache_line ~off ~len
