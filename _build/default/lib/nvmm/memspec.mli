(** Memory-technology cost model.

    All performance numbers in the reproduction come from a simulated
    clock: each memory access charges a latency drawn from this spec.
    Defaults encode the ratios reported in the paper's evaluation
    (section 6.1): on the authors' machine DRAM had 11.9x the random
    write throughput and 3.2x the random read throughput of Optane
    NVMM, and Optane's internal access granularity is 256 bytes.

    Latencies are in simulated nanoseconds. Only the *ratios* matter for
    reproducing the paper's shapes; absolute values are calibrated to
    plausible hardware numbers so reported throughputs are of a sane
    magnitude. *)

type t = {
  dram_read_ns : float;  (** random DRAM cache-line read *)
  dram_write_ns : float;  (** random DRAM cache-line write *)
  nvmm_read_block_ns : float;  (** random NVMM 256 B block read *)
  nvmm_write_block_ns : float;  (** random NVMM 256 B block write *)
  nvmm_seq_write_ns_per_byte : float;
      (** streaming NVMM write (input log), charged per byte *)
  flush_ns : float;  (** clwb instruction overhead *)
  fence_ns : float;  (** sfence overhead *)
  compute_op_ns : float;  (** fixed CPU cost per transaction operation *)
  cache_line : int;  (** CPU cache line size, bytes *)
  nvmm_block : int;  (** NVMM internal access granularity, bytes *)
}

val default : t
(** Optane-like spec: DRAM 60 ns line accesses; NVMM random reads 3.2x
    and random writes 11.9x more expensive per 256 B block. *)

val dram_only : t
(** A spec where "NVMM" accesses cost the same as DRAM — used by the
    all-DRAM baseline so the same code paths run with DRAM costs. *)

val blocks_touched : t -> off:int -> len:int -> int
(** Number of NVMM blocks overlapped by the byte range. [len = 0]
    touches no block. *)

val lines_touched : t -> off:int -> len:int -> int
(** Number of CPU cache lines overlapped by the byte range. *)
