type region = { name : string; off : int; len : int }
type builder = { mutable next : int; mutable regions : region list (* newest first *) }

let builder () = { next = 0; regions = [] }

let align_up v a = (v + a - 1) / a * a

let reserve b ~name ~len ?(align = 256) () =
  assert (len >= 0 && align > 0);
  let off = align_up b.next align in
  let r = { name; off; len } in
  b.next <- off + len;
  b.regions <- r :: b.regions;
  r

let total_size b = align_up b.next 256
let regions b = List.rev b.regions
let find b name = List.find (fun r -> r.name = name) b.regions
