lib/nvmm/layout.mli:
