lib/nvmm/pmem.mli: Nv_util Stats
