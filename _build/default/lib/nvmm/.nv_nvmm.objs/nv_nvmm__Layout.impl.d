lib/nvmm/layout.ml: List
