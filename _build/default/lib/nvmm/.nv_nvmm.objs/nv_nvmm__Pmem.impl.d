lib/nvmm/pmem.ml: Bytes Char Hashtbl List Nv_util Printf Stats
