lib/nvmm/memspec.ml:
