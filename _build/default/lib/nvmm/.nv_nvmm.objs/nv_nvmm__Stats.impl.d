lib/nvmm/stats.ml: Format Memspec
