lib/nvmm/memspec.mli:
