lib/nvmm/stats.mli: Format Memspec
