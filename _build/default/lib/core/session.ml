type handle = int

type t = {
  db : Db.t;
  epoch_target : int;
  auto_flush : bool;
  queue : Txn.t Queue.t;
  mutable next_handle : int;
  mutable queued_from : int; (* handle of the first queued transaction *)
  outcomes : (int, [ `Committed | `Aborted ]) Hashtbl.t;
}

let create ~db ?(epoch_target = 1000) ?(auto_flush = true) () =
  assert (epoch_target > 0);
  {
    db;
    epoch_target;
    auto_flush;
    queue = Queue.create ();
    next_handle = 0;
    queued_from = 0;
    outcomes = Hashtbl.create 256;
  }

let pending t = Queue.length t.queue
let submitted t = t.next_handle
let db t = t.db

let flush t =
  if Queue.is_empty t.queue then None
  else begin
    let batch = Array.init (Queue.length t.queue) (fun _ -> Queue.pop t.queue) in
    let stats = Db.run_epoch t.db batch in
    (* The epoch is checkpointed; only now do outcomes become
       visible (section 6.2.3). *)
    Array.iteri
      (fun i outcome -> Hashtbl.replace t.outcomes (t.queued_from + i) outcome)
      (Db.last_epoch_outcomes t.db);
    t.queued_from <- t.queued_from + Array.length batch;
    Some stats
  end

let submit t txn =
  if t.auto_flush && Queue.length t.queue >= t.epoch_target then ignore (flush t);
  let h = t.next_handle in
  t.next_handle <- h + 1;
  Queue.push txn t.queue;
  h

let result t h =
  if h < 0 || h >= t.next_handle then invalid_arg "Session.result: unknown handle";
  Hashtbl.find_opt t.outcomes h
