type t = int64

let make ~epoch ~seq =
  assert (epoch >= 1 && seq >= 0 && seq < 1 lsl 32);
  Int64.(logor (shift_left (of_int epoch) 32) (of_int (seq + 1)))

let epoch_of t = Int64.to_int (Int64.shift_right_logical t 32)
let seq_of t = Int64.to_int (Int64.logand t 0xFFFFFFFFL) - 1
let none = 0L
let is_none t = t = 0L
let compare = Int64.compare
let pp ppf t = Format.fprintf ppf "%d.%d" (epoch_of t) (seq_of t)
