(** Client session: submission queue, epoch batching, and
    checkpoint-gated result visibility.

    Clients of a deterministic database submit one-shot transactions
    and get their outcome later; results must not be exposed before the
    epoch is durably checkpointed (paper section 6.2.3 — otherwise a
    crash could revoke an answer the client already saw). A session
    queues submissions, runs an epoch when [flush]ed (or automatically
    once [epoch_target] submissions are queued, if [auto_flush]), and
    answers [result] only for transactions whose epoch has committed.

    A transaction's effects on values captured by its body's closures
    follow the same rule: act on them only after [result] reports
    [`Committed]. *)

type t

type handle
(** Ticket for one submitted transaction. *)

val create : db:Db.t -> ?epoch_target:int -> ?auto_flush:bool -> unit -> t
(** Wrap an existing (loaded) database. [epoch_target] (default 1000)
    is the batch size [auto_flush] (default true) triggers at. *)

val submit : t -> Txn.t -> handle
(** Queue a transaction; runs an epoch first if auto-flush triggers. *)

val flush : t -> Report.epoch_stats option
(** Run an epoch with everything queued; [None] when the queue is
    empty. After [flush] returns, the epoch is checkpointed and its
    results are visible. *)

val result : t -> handle -> [ `Committed | `Aborted ] option
(** [None] while the transaction's epoch has not yet run; the final
    outcome afterwards. *)

val pending : t -> int
(** Queued, not-yet-executed transactions. *)

val submitted : t -> int
val db : t -> Db.t
