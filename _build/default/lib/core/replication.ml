type t = {
  primary : Db.t;
  replica : Db.t;
  tables : Table.t array;
  rebuild : bytes -> Txn.t;
  queue : bytes array Queue.t; (* one entry per shipped epoch *)
  mutable shipped_bytes : int;
}

let create ~config ~tables ~rebuild () =
  {
    primary = Db.create ~config ~tables ();
    replica = Db.create ~config ~tables ();
    tables = Array.of_list tables;
    rebuild;
    queue = Queue.create ();
    shipped_bytes = 0;
  }

let bulk_load t rows =
  (* Two passes over the sequence; workloads produce pure Seqs. *)
  Db.bulk_load t.primary rows;
  Db.bulk_load t.replica rows

let submit t txns =
  let stats = Db.run_epoch t.primary txns in
  let inputs = Array.map (fun (txn : Txn.t) -> txn.Txn.input) txns in
  Array.iter (fun b -> t.shipped_bytes <- t.shipped_bytes + Bytes.length b) inputs;
  Queue.push inputs t.queue;
  stats

let replica_lag t = Queue.length t.queue

let apply_one t =
  match Queue.take_opt t.queue with
  | None -> ()
  | Some inputs -> ignore (Db.run_epoch t.replica (Array.map t.rebuild inputs))

let sync t ?upto () =
  let n = match upto with Some n -> min n (Queue.length t.queue) | None -> Queue.length t.queue in
  for _ = 1 to n do
    apply_one t
  done

let shipped_bytes t = t.shipped_bytes
let primary t = t.primary
let replica t = t.replica

let failover t =
  sync t ();
  t.replica

let table_state db ~table =
  let out = ref [] in
  Db.iter_committed db ~table (fun k v -> out := (k, Bytes.to_string v) :: !out);
  List.sort compare !out

let states_equal t =
  sync t ();
  Array.for_all
    (fun (tb : Table.t) ->
      table_state t.primary ~table:tb.Table.id = table_state t.replica ~table:tb.Table.id)
    t.tables
