(** Transaction serial IDs.

    The pre-established serial order of a deterministic database: SIDs
    order transactions globally. An SID packs the epoch number and the
    transaction's position within its epoch's batch, so comparing SIDs
    compares (epoch, position) lexicographically, and recovery can test
    which epoch wrote a persistent version. SID 0 is reserved to mean
    "no version". *)

type t = int64

val make : epoch:int -> seq:int -> t
(** [seq] is 0-based within the epoch; epochs start at 1. *)

val epoch_of : t -> int
val seq_of : t -> int
val none : t
(** The reserved empty SID (0). *)

val is_none : t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
