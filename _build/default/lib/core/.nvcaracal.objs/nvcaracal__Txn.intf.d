lib/core/txn.mli: Hashtbl Sid
