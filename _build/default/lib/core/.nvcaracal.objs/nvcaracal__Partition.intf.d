lib/core/partition.mli: Config Db Nv_util Report Seq Table Txn
