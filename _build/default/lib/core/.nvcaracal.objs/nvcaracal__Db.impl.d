lib/core/db.ml: Array Bytes Cache Config Float Format Hashtbl Int64 List Nv_index Nv_nvmm Nv_storage Option Printf Report Row Seq Sid Table Txn Version_array
