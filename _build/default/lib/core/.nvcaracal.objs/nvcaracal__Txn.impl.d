lib/core/txn.ml: Hashtbl Sid
