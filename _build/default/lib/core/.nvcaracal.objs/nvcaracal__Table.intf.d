lib/core/table.mli:
