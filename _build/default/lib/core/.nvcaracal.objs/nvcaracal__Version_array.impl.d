lib/core/version_array.ml: Array Nv_nvmm Nv_storage Sid
