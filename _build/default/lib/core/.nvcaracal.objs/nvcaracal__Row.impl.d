lib/core/row.ml: Nv_storage Sid Version_array
