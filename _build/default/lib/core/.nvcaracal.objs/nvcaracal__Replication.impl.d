lib/core/replication.ml: Array Bytes Db List Queue Table Txn
