lib/core/session.ml: Array Db Hashtbl Queue Txn
