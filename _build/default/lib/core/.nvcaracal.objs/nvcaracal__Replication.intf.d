lib/core/replication.mli: Config Db Report Seq Table Txn
