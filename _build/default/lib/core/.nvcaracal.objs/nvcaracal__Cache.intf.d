lib/core/cache.mli: Nv_nvmm Row
