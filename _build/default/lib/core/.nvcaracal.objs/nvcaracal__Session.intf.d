lib/core/session.mli: Db Report Txn
