lib/core/config.ml: Format Nv_nvmm Nv_storage
