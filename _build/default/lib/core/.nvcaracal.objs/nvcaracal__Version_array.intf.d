lib/core/version_array.mli: Nv_nvmm Nv_storage Sid
