lib/core/table.ml:
