lib/core/cache.ml: Bytes Hashtbl List Nv_nvmm Row
