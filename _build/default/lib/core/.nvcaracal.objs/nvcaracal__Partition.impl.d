lib/core/partition.ml: Array Bytes Config Db Float Hashtbl Int32 List Nv_nvmm Nv_util Printf Queue Report Seq Sid Table Txn
