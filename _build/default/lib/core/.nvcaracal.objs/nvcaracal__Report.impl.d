lib/core/report.ml: Format
