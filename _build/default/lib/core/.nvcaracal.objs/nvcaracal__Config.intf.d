lib/core/config.mli: Format Nv_nvmm
