lib/core/db.mli: Config Nv_nvmm Nv_util Report Seq Table Txn
