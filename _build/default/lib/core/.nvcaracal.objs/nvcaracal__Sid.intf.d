lib/core/sid.mli: Format
