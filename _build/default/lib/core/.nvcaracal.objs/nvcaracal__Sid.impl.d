lib/core/sid.ml: Format Int64
