(** Primary/replica replication by input-log shipping.

    Deterministic databases replicate by shipping each epoch's
    transaction inputs and serial order, not its effects (paper
    sections 1 and 2.2, after SLOG/Calvin): the replica replays the
    batch with the same deterministic concurrency control and reaches
    a bit-identical committed state. The epoch's input record is tiny
    compared to redo traffic, and no two-phase commit is needed.

    This module wires two {!Db.t} instances together: the primary
    executes a batch, the serialized inputs are appended to a ship
    queue, and the replica consumes them — synchronously ([sync]) or
    with a configurable apply lag. Failover promotes the replica after
    draining the queue; epochs whose inputs were shipped are never
    lost, and the promoted database continues from the same committed
    state the primary had. *)

type t

val create :
  config:Config.t ->
  tables:Table.t list ->
  rebuild:(bytes -> Txn.t) ->
  unit ->
  t
(** Primary and replica share the configuration and schema; [rebuild]
    deserializes a logged input back into its transaction (the same
    function {!Db.recover} uses). *)

val bulk_load : t -> (int * int64 * bytes) Seq.t -> unit
(** Load both sides (initial state is shipped out of band, as when
    seeding a new replica from a checkpoint). *)

val submit : t -> Txn.t array -> Report.epoch_stats
(** Execute one epoch on the primary and enqueue its input record for
    the replica. *)

val replica_lag : t -> int
(** Shipped-but-unapplied epochs. *)

val sync : t -> ?upto:int -> unit -> unit
(** Apply up to [upto] queued epochs on the replica (default: all). *)

val shipped_bytes : t -> int
(** Total input-record bytes shipped so far. *)

val primary : t -> Db.t
val replica : t -> Db.t
(** Direct access (e.g. serving stale reads from the replica). *)

val failover : t -> Db.t
(** Drain the queue and promote the replica: returns a database equal
    to the primary's last submitted state, ready to execute epochs.
    The pair must not be used afterwards. *)

val states_equal : t -> bool
(** True when primary and the fully-synced replica agree on every
    table's committed contents (testing/verification; drains the
    queue). *)
