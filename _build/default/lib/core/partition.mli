(** Multi-partition deterministic execution without two-phase commit.

    The introduction's distributed-transactions argument (after
    Calvin): because the serial order is fixed before execution and
    transactions cannot abort for concurrency reasons, a batch can
    commit across partitions with {e no} two-phase commit — every node
    independently reaches the same decisions.

    This module shards tables by key hash across N single-node
    databases and processes batches with Aria-style deterministic
    concurrency control:

    + {b snapshot execution}: every transaction runs against the
      epoch-start snapshot; reads are routed to the owning partition
      (remote reads bill a configurable network round-trip to the
      reader's core) and writes are buffered;
    + {b deterministic reservations}: each key records the smallest
      transaction SID that wrote it; a transaction defers (for client
      retry) if any key it read or wrote carries a smaller reservation
      — the same rule on every node, no coordination;
    + {b apply}: each partition commits its share of the surviving
      writes as a local epoch (logged and checkpointed by its own
      engine), so per-node crash recovery works unchanged.

    The coordinator retains recent apply batches so a node that crashed
    before applying an epoch can be caught up ([recover_node]), exactly
    like a lagging replica. *)

type t

val create :
  config:Config.t ->
  tables:Table.t list ->
  nodes:int ->
  ?remote_read_ns:float ->
  unit ->
  t
(** [nodes] single-node engines sharing a schema; keys are sharded by
    hash. [remote_read_ns] (default 2000 — a fast datacenter RTT) is
    added to every cross-partition read. *)

val nodes : t -> int
val node : t -> int -> Db.t
(** Direct access to one partition's engine (reads, reports). *)

val owner : t -> table:int -> key:int64 -> int
(** The partition a key lives on. *)

val bulk_load : t -> (int * int64 * bytes) Seq.t -> unit
(** Rows are routed to their owners. *)

val run_epoch : t -> Txn.t array -> Report.epoch_stats * Txn.t array
(** Process one batch across all partitions; returns merged stats
    (duration = the slowest node) and the deferred transactions. *)

val read : t -> table:int -> key:int64 -> bytes option
(** Committed read, routed to the owner (uncharged; client-side). *)

val epoch : t -> int

val crash_node : t -> int -> rng:Nv_util.Rng.t -> unit
(** Tear one node's NVMM to a crash image (requires a crash-safe
    configuration). The node is unusable until [recover_node]. *)

val recover_node : t -> int -> unit
(** Rebuild the node from its NVMM image and replay retained apply
    batches until it rejoins at the cluster epoch. *)

val total_time_ns : t -> float
val committed_txns : t -> int
