type index_kind = Hash | Ordered

type t = { id : int; name : string; index : index_kind }

let make ~id ~name ?(index = Hash) () = { id; name; index }
