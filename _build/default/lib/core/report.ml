type epoch_stats = {
  epoch : int;
  txns : int;
  aborted : int;
  version_writes : int;
  persistent_writes : int;
  transient_only_writes : int;
  minor_gc : int;
  major_gc : int;
  evicted : int;
  cache_hits : int;
  cache_misses : int;
  log_bytes : int;
  duration_ns : float;
  phases : (string * float) list;
}

type mem_report = {
  nvmm_rows : int;
  nvmm_values : int;
  nvmm_log : int;
  nvmm_freelists : int;
  dram_index : int;
  dram_transient : int;
  dram_cache : int;
}

type recovery_report = {
  load_log_ns : float;
  scan_ns : float;
  revert_ns : float;
  replay_ns : float;
  total_ns : float;
  scanned_rows : int;
  reverted_rows : int;
  replayed_txns : int;
}

let pp_phases ppf phases =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
    (fun ppf (name, ns) -> Format.fprintf ppf "%s %.0fus" name (ns /. 1e3))
    ppf phases

let pp_epoch_stats ppf s =
  Format.fprintf ppf
    "epoch %d: %d txns (%d aborted), %d version writes (%d persistent, %d transient), gc \
     minor/major %d/%d, evicted %d, cache %d/%d, log %dB, %.0f us"
    s.epoch s.txns s.aborted s.version_writes s.persistent_writes s.transient_only_writes
    s.minor_gc s.major_gc s.evicted s.cache_hits s.cache_misses s.log_bytes
    (s.duration_ns /. 1e3)

let total_nvmm m = m.nvmm_rows + m.nvmm_values + m.nvmm_log + m.nvmm_freelists
let total_dram m = m.dram_index + m.dram_transient + m.dram_cache

let pp_mem_report ppf m =
  Format.fprintf ppf
    "NVMM: rows %d, values %d, log %d, alloc-meta %d | DRAM: index %d, transient %d, cache %d"
    m.nvmm_rows m.nvmm_values m.nvmm_log m.nvmm_freelists m.dram_index m.dram_transient
    m.dram_cache

let pp_recovery_report ppf r =
  Format.fprintf ppf
    "recovery: load-log %.0fus, scan %.0fus (%d rows), revert %.0fus (%d rows), replay %.0fus \
     (%d txns), total %.0fus"
    (r.load_log_ns /. 1e3) (r.scan_ns /. 1e3) r.scanned_rows (r.revert_ns /. 1e3)
    r.reverted_rows (r.replay_ns /. 1e3) r.replayed_txns (r.total_ns /. 1e3)

let transient_fraction s =
  if s.version_writes = 0 then nan
  else float_of_int s.transient_only_writes /. float_of_int s.version_writes
