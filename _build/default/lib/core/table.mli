(** Table descriptors.

    A database is created with a fixed set of tables; each has an id
    (used in keys, ops and persistent row headers) and an index kind.
    Hash tables serve point lookups; ordered tables additionally
    support range scans and max-below queries (TPC-C). *)

type index_kind = Hash | Ordered

type t = { id : int; name : string; index : index_kind }

val make : id:int -> name:string -> ?index:index_kind -> unit -> t
(** Default index kind is [Hash]. *)
