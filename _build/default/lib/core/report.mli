(** Measurement records produced by the engine.

    [epoch_stats] is returned by every epoch run; [mem_report] breaks
    down DRAM/NVMM consumption (Figure 8); [recovery_report] breaks
    down recovery time (Figure 11). *)

type epoch_stats = {
  epoch : int;
  txns : int;
  aborted : int;
  version_writes : int;  (** all version-value writes this epoch *)
  persistent_writes : int;  (** final writes that reached NVMM *)
  transient_only_writes : int;
      (** version writes absorbed by DRAM — the paper's "% transient"
          metric is [transient_only_writes / version_writes] *)
  minor_gc : int;
  major_gc : int;
  evicted : int;
  cache_hits : int;
  cache_misses : int;
  log_bytes : int;
  duration_ns : float;  (** simulated wall time of the epoch *)
  phases : (string * float) list;
      (** per-phase simulated durations, in pipeline order (log /
          insert / gc+evict / append / execute / checkpoint) *)
}

type mem_report = {
  nvmm_rows : int;  (** persistent row bytes in use *)
  nvmm_values : int;  (** persistent value-pool bytes in use *)
  nvmm_log : int;  (** input-log high-water mark, bytes *)
  nvmm_freelists : int;  (** ring-buffer and allocator metadata bytes *)
  dram_index : int;
  dram_transient : int;  (** transient-pool high-water mark *)
  dram_cache : int;
}

type recovery_report = {
  load_log_ns : float;
  scan_ns : float;
  revert_ns : float;
  replay_ns : float;
  total_ns : float;
  scanned_rows : int;
  reverted_rows : int;
  replayed_txns : int;
}

val pp_epoch_stats : Format.formatter -> epoch_stats -> unit
val pp_phases : Format.formatter -> (string * float) list -> unit
val pp_mem_report : Format.formatter -> mem_report -> unit
val pp_recovery_report : Format.formatter -> recovery_report -> unit

val total_nvmm : mem_report -> int
val total_dram : mem_report -> int

val transient_fraction : epoch_stats -> float
(** Fraction of version writes that stayed in DRAM; [nan] when no
    writes happened. *)
