(* DRAM-side row state: what the row index points at (paper Figure 3).

   [pv1]/[pv2] mirror the two NVMM version slots so the hot write path
   can make GC decisions without re-reading the row header (the header
   block is charged once when it is actually written). The mirror is
   rebuilt from the persistent rows during recovery.

   [fresh] marks a pool value slot allocated by this process in the
   current epoch: overwriting it frees the slot (a revertible
   transaction free), whereas overwriting a slot inherited from a
   crashed epoch must NOT free it — its allocation was already reverted
   by the pool recovery, so freeing would double-free. *)

type pversion = { psid : Sid.t; pptr : Nv_storage.Vptr.t; fresh : bool }

type cached = { mutable data : bytes; mutable last_epoch : int }

type t = {
  key : int64;
  table : int;
  home_core : int;  (* core whose pool owns the persistent row *)
  mutable prow_base : int;  (* absolute pmem offset of the persistent row *)
  mutable pv1 : pversion;
  mutable pv2 : pversion;
  mutable varray : Version_array.t option;
  mutable varray_epoch : int;  (* epoch the varray belongs to (stale-pointer detection) *)
  mutable cached : cached option;
  mutable in_gc_list : bool;
  mutable mirror_loaded : bool;
      (* pv1/pv2 reflect the NVMM header; false for rows recovered via
         the persistent index, whose state loads lazily on first touch *)
  mutable lazily_recovered : bool;
      (* sticky: this row skipped the recovery scan, so a stale pool v1
         discovered at write time is collected in place instead of by
         the (never-rebuilt) major-GC list *)
  mutable created_epoch : int;
      (* epoch the row was inserted; readers whose serial position
         precedes every version in the array must not fall back to the
         persistent row when the row did not exist before this epoch *)
}

let no_version = { psid = Sid.none; pptr = Nv_storage.Vptr.null; fresh = false }

let make ~key ~table ~home_core ~prow_base ~created_epoch =
  {
    key;
    table;
    home_core;
    prow_base;
    pv1 = no_version;
    pv2 = no_version;
    varray = None;
    varray_epoch = 0;
    cached = None;
    in_gc_list = false;
    mirror_loaded = true;
    lazily_recovered = false;
    created_epoch;
  }

(* Which inline half a version occupies, or [None] if it is null or in
   the value pool. *)
let inline_half ~row_size (v : pversion) =
  match Nv_storage.Vptr.classify v.pptr with
  | Nv_storage.Vptr.Inline { heap_off; _ } ->
      Some (if heap_off >= Nv_storage.Prow.half_capacity ~row_size then 1 else 0)
  | Nv_storage.Vptr.Null | Nv_storage.Vptr.Pool _ -> None

(* The inline half a new value may use without clobbering [taken]. *)
let free_half ~row_size taken =
  match inline_half ~row_size taken with Some 0 -> 1 | Some 1 -> 0 | Some _ | None -> 0

let dram_bytes t =
  48 + (match t.varray with Some va -> Version_array.dram_bytes va | None -> 0)
