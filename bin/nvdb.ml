(* nvdb: command-line driver for the NVCaracal reproduction.

   Subcommands:
     run      — run a benchmark workload on a chosen engine/design
     recover  — run, crash mid-epoch, recover, and report the breakdown
     mem      — run and print the DRAM/NVMM consumption breakdown
     serve    — serve the wire protocol on a socket, batching clients
     loadgen  — drive a running server with concurrent clients
     stats    — fetch a live statistics snapshot from a running server
     serve-sim — drive the serving pipeline deterministically in process
     chaos    — kill-9 a journaled server repeatedly and check recovery

   Examples:
     dune exec bin/nvdb.exe -- run --workload smallbank --contention high
     dune exec bin/nvdb.exe -- run --workload ycsb --engine zen --profile
     dune exec bin/nvdb.exe -- recover --workload tpcc --epochs 4
     dune exec bin/nvdb.exe -- serve --listen /tmp/nvdb.sock --stats-interval 1 &
     dune exec bin/nvdb.exe -- serve --journal /tmp/nvdb.journal --recover
     dune exec bin/nvdb.exe -- stats --listen /tmp/nvdb.sock
     dune exec bin/nvdb.exe -- loadgen --clients 32 --txns 100 --shutdown
     dune exec bin/nvdb.exe -- chaos --iterations 25 *)

open Cmdliner
module Runner = Nv_harness.Runner
module Cli = Nv_harness.Cli
module Config = Nvcaracal.Config
module Engine_intf = Nvcaracal.Engine_intf
module Wire = Nv_frontend.Wire

let ppf = Format.std_formatter

let print_result (r : Runner.result) =
  Format.fprintf ppf "workload        %s@." r.Runner.label;
  Format.fprintf ppf "transactions    %d (%d aborted)@." r.Runner.txns r.Runner.aborted;
  Format.fprintf ppf "simulated time  %.3f ms@." (r.Runner.sim_seconds *. 1e3);
  Format.fprintf ppf "throughput      %s@." (Nv_harness.Tablefmt.mtps r.Runner.throughput);
  Format.fprintf ppf "transient       %s of version writes stayed in DRAM@."
    (Nv_harness.Tablefmt.pct r.Runner.transient_frac);
  Format.fprintf ppf "gc              %d minor, %d major@." r.Runner.minor_gc r.Runner.major_gc;
  Format.fprintf ppf "cache           %d hits / %d misses@." r.Runner.cache_hits
    r.Runner.cache_misses;
  if r.Runner.log_bytes > 0 then
    Format.fprintf ppf "input log       %s@." (Nv_harness.Tablefmt.bytes r.Runner.log_bytes);
  Format.fprintf ppf "epoch latency   %a@." Nv_util.Histogram.pp r.Runner.epoch_latency;
  if r.Runner.last_epoch_phases <> [] then
    Format.fprintf ppf "phase breakdown %a@." Nvcaracal.Report.pp_phases
      r.Runner.last_epoch_phases

let run_cmd =
  let run workload contention engine epochs txns seed jobs trace_file metrics_file trace_wall
      profile profile_out slow_epoch_ms =
    Cli.set_jobs jobs;
    let w, growth = Cli.resolve_workload workload contention in
    let setup = Runner.setup ~epochs ~epoch_txns:txns ~seed ~insert_growth:growth () in
    let o =
      Cli.observability ~trace_wall ~profile ?profile_out ?slow_epoch_ms ~trace:trace_file
        ~metrics:metrics_file ()
    in
    let spec = Cli.resolve_engine engine in
    print_result
      (Runner.run ?tracer:o.Cli.tracer ?metrics:o.Cli.metrics ?profile:o.Cli.profile spec setup
         w);
    o.Cli.flush ()
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run a benchmark workload")
    Term.(
      const run $ Cli.workload $ Cli.contention $ Cli.engine $ Cli.epochs $ Cli.txns $ Cli.seed
      $ Cli.jobs $ Cli.trace $ Cli.metrics $ Cli.trace_wall $ Cli.profile $ Cli.profile_out
      $ Cli.slow_epoch_ms)

let recover_cmd =
  let run workload contention epochs txns seed jobs trace_file metrics_file =
    Cli.set_jobs jobs;
    let w, growth = Cli.resolve_workload workload contention in
    let setup = Runner.setup ~epochs ~epoch_txns:txns ~seed ~insert_growth:growth () in
    let o = Cli.observability ~trace:trace_file ~metrics:metrics_file () in
    let { Runner.r_label; report } =
      Runner.run_recovery setup w ~crash_after_txns:(txns * 9 / 10) ?tracer:o.Cli.tracer
        ?metrics:o.Cli.metrics ()
    in
    Format.fprintf ppf "workload %s crashed mid-epoch and recovered:@." r_label;
    Format.fprintf ppf "%a@." Nvcaracal.Report.pp_recovery_report report;
    o.Cli.flush ()
  in
  Cmd.v
    (Cmd.info "recover" ~doc:"Crash a run mid-epoch and measure recovery")
    Term.(
      const run $ Cli.workload $ Cli.contention $ Cli.epochs $ Cli.txns $ Cli.seed $ Cli.jobs
      $ Cli.trace $ Cli.metrics)

let mem_cmd =
  let run workload contention epochs txns seed jobs =
    Cli.set_jobs jobs;
    let w, growth = Cli.resolve_workload workload contention in
    let setup = Runner.setup ~epochs ~epoch_txns:txns ~seed ~insert_growth:growth () in
    let r = Runner.run_nvcaracal setup w ~variant:Config.Nvcaracal () in
    Format.fprintf ppf "%a@." Nvcaracal.Report.pp_mem_report r.Runner.mem
  in
  Cmd.v
    (Cmd.info "mem" ~doc:"Report DRAM/NVMM consumption for a workload")
    Term.(
      const run $ Cli.workload $ Cli.contention $ Cli.epochs $ Cli.txns $ Cli.seed $ Cli.jobs)

let fuzz_cmd =
  let iters =
    Arg.(value & opt int 25 & info [ "iterations" ] ~docv:"N" ~doc:"Fuzz iterations.")
  in
  let faults_flag =
    let doc =
      "Fuzz through random media-fault models (torn lines, bit-rot, dead lines) and recover \
       in scrub mode, checking the damage report against the oracle."
    in
    Arg.(value & flag & info [ "faults" ] ~doc)
  in
  let diff_flag =
    let doc =
      "Differential fuzzing: run the same seeded batches through the NVCaracal and Zen \
       engines behind the shared engine interface and compare committed state."
    in
    Arg.(value & flag & info [ "diff" ] ~doc)
  in
  let run seed iterations faults diff jobs =
    Cli.set_jobs jobs;
    let outcome =
      Nv_harness.Fuzzer.run ~seed ~iterations ~faults ~diff ~jobs:(max 1 jobs)
        ~log:(fun line -> Format.fprintf ppf "%s@." line)
        ()
    in
    Format.fprintf ppf "@.%d iterations, %d crashes injected, %d replays, %d failures@."
      outcome.Nv_harness.Fuzzer.iterations outcome.Nv_harness.Fuzzer.crashes_injected
      outcome.Nv_harness.Fuzzer.replays
      (List.length outcome.Nv_harness.Fuzzer.failures);
    if diff then
      Format.fprintf ppf "%d NVCaracal-vs-Zen differential iterations@."
        outcome.Nv_harness.Fuzzer.diffed
    else if faults then
      Format.fprintf ppf
        "%d faulted, %d mid-recovery crashes, %d salvage recoveries, %d detection-only@."
        outcome.Nv_harness.Fuzzer.faulted outcome.Nv_harness.Fuzzer.recrashes
        outcome.Nv_harness.Fuzzer.salvages outcome.Nv_harness.Fuzzer.detection_only;
    List.iter (fun f -> Format.fprintf ppf "FAILURE: %s@." f) outcome.Nv_harness.Fuzzer.failures;
    if outcome.Nv_harness.Fuzzer.failures <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "fuzz" ~doc:"Randomized crash-recovery fuzzing against an oracle")
    Term.(const run $ Cli.seed $ iters $ faults_flag $ diff_flag $ Cli.jobs)

let scrub_cmd =
  let fault_arg =
    let doc = "Fault model for the crash: legal, torn, rot, or dead." in
    Arg.(value & opt string "rot" & info [ "fault" ] ~docv:"KIND" ~doc)
  in
  let run workload contention epochs txns seed jobs fault =
    Cli.set_jobs jobs;
    let w, growth = Cli.resolve_workload workload contention in
    let setup = Runner.setup ~epochs ~epoch_txns:txns ~seed ~insert_growth:growth () in
    let faults =
      let open Nv_nvmm.Pmem in
      match fault with
      | "legal" -> no_faults
      | "torn" -> { no_faults with torn_frac = 0.5 }
      | "rot" -> { no_faults with rot_lines = 4; rot_max_bits = 3 }
      | "dead" -> { no_faults with dead = 2 }
      | other -> failwith (Printf.sprintf "unknown fault kind %S" other)
    in
    match Runner.run_scrub setup w ~crash_after_txns:(txns * 9 / 10) ~faults () with
    | { Runner.r_label; report } ->
        Format.fprintf ppf "workload %s crashed with %s faults; scrub recovery:@." r_label
          fault;
        Format.fprintf ppf "%a@." Nvcaracal.Report.pp_recovery_report report
    | exception Nv_storage.Meta_region.Corrupt msg ->
        Format.fprintf ppf "UNRECOVERABLE: %s@." msg;
        exit 2
    | exception Failure msg ->
        (* E.g. a torn identity header dropped a row the crashed epoch's
           replay then needed: detected loudly, not salvageable. *)
        Format.fprintf ppf "UNRECOVERABLE: corruption broke deterministic replay: %s@." msg;
        exit 2
  in
  Cmd.v
    (Cmd.info "scrub"
       ~doc:"Crash through a media-fault model and recover with checksum scrubbing")
    Term.(
      const run $ Cli.workload $ Cli.contention $ Cli.epochs $ Cli.txns $ Cli.seed $ Cli.jobs
      $ fault_arg)

(* ------------------------------------------------------------------ *)
(* Networked front end                                                 *)

(* [serve --shard-id I --shards N]: run as one member of a routed
   cluster, speaking the shard plane only. Routers spawn these; the
   journal (input log: every fence's calls plus merged read table) is
   the shard's own durability, replayed with no cluster round trip. *)
let serve_shard ~workload ~contention ~engine ~seed ~capacity ~batch_target ~journal_path
    ~recover ~journal_mb ~listen ~shards ~sid =
  let w, growth = Cli.resolve_workload workload contention in
  let spec = Cli.resolve_engine engine in
  let spec =
    if journal_path <> None then { spec with Nv_harness.Engine.crash_safe = true } else spec
  in
  let address = Cli.parse_address listen in
  let setup =
    Nv_harness.Engine.setup
      ~epochs:((capacity / batch_target) + 1)
      ~epoch_txns:batch_target ~seed ~insert_growth:growth ()
  in
  let registry = Nv_frontend.Proc.of_workload w in
  let meta =
    Nv_frontend.Restart.meta ~workload ~contention ~engine ~seed
    ^ Printf.sprintf "#shard%d/%d" sid shards
  in
  let packed = Nv_harness.Engine.instantiate spec setup w in
  let journal, records =
    match journal_path with
    | None -> (None, [])
    | Some path when Sys.file_exists path && recover ->
        let opened = Nv_frontend.Journal.load ~path ~meta in
        (Some opened.Nv_frontend.Journal.journal, opened.Nv_frontend.Journal.records)
    | Some path ->
        if Sys.file_exists path then
          failwith
            (Printf.sprintf
               "nvdb serve (shard %d): journal %s already exists; pass --recover to replay it"
               sid path);
        (Some (Nv_frontend.Journal.create ~size:(journal_mb * 1024 * 1024) ~path ~meta ()), [])
  in
  let shard =
    Nv_frontend.Shard.create ~shard_id:sid ~shards ?journal ~engine:packed ~registry
      ~tables:w.Nv_workloads.Workload.tables ()
  in
  Nv_frontend.Shard.bulk_load shard (w.Nv_workloads.Workload.load ());
  if records <> [] then begin
    Nv_frontend.Shard.recover shard ~records;
    Format.fprintf ppf "nvdb shard %d/%d: replayed %d journaled fences@." sid shards
      (List.length records)
  end;
  let stop = ref false in
  let handler = Sys.Signal_handle (fun _ -> stop := true) in
  Sys.set_signal Sys.sigterm handler;
  Sys.set_signal Sys.sigint handler;
  Format.fprintf ppf "nvdb shard %d/%d: serving %s on %s (%s)@." sid shards
    w.Nv_workloads.Workload.name listen
    (Nv_harness.Engine.label spec w);
  Nv_frontend.Shard.serve shard ~address ~should_stop:(fun () -> !stop);
  Format.fprintf ppf "shard applied     %d@." (Nv_frontend.Shard.applied shard);
  Format.fprintf ppf "shard digest      %Lx@." (Nv_frontend.Shard.digest shard);
  match journal with
  | Some j ->
      Format.fprintf ppf "shard journal     %d records, %d bytes@."
        (Nv_frontend.Journal.record_count j)
        (Nv_frontend.Journal.used_bytes j);
      Nv_frontend.Journal.close j
  | None -> ()

(* [serve --shards N] (no --shard-id): the router. Spawns N shard
   processes, journals the global admission order, and serves the
   client plane by routing every batch as one two-round epoch across
   them. Recovery is records-only replay: sessions are not
   checkpointed (clients re-resume), and the shards answer re-driven
   epochs from their own recovered state. *)
let serve_router ~workload ~contention ~engine ~seed ~jobs ~listen ~batch_target ~deadline
    ~max_pending ~capacity ~once ~stats_interval ~stats_out ~journal_path ~recover
    ~checkpoint_every ~journal_mb ~shards:n ~trace_file ~metrics_file =
  let journal_base =
    match journal_path with
    | Some p -> p
    | None ->
        failwith "nvdb serve: --shards > 1 requires --journal (cluster recovery is replay)"
  in
  if checkpoint_every > 0 then
    failwith "nvdb serve: --checkpoint-every is single-shard only (cluster recovery is replay)";
  let w, _growth = Cli.resolve_workload workload contention in
  let address = Cli.parse_address listen in
  let registry = Nv_frontend.Proc.of_workload w in
  let meta =
    Nv_frontend.Restart.meta ~workload ~contention ~engine ~seed
    ^ Printf.sprintf "#cluster%d" n
  in
  (* Generation = boot time in seconds. Shards refuse hellos older than
     the newest they have seen, so a zombie router loses its shards the
     moment a replacement says hello. *)
  let gen = int_of_float (Unix.time ()) land 0x3FFFFFFF in
  let shard_listen i =
    match address with
    | `Unix p -> Printf.sprintf "%s.shard%d" p i
    | `Tcp (h, port) -> Printf.sprintf "%s:%d" h (port + 1 + i)
  in
  (* Chaos plumbing: NVC_SHARD_CRASHPOINT holds comma-separated
     SHARD:POINT:N specs; each (re)spawn of shard I consumes the first
     spec targeting I and arms the child with a plain NVC_CRASHPOINT.
     The plan travels under a different name because Crashpoint reads
     NVC_CRASHPOINT eagerly at module init — the router itself must
     never arm. The queue is finite, so every campaign terminates. *)
  let crash_plan =
    ref
      (match Sys.getenv_opt "NVC_SHARD_CRASHPOINT" with
      | None -> []
      | Some s ->
          List.filter_map
            (fun spec ->
              match String.split_on_char ':' spec with
              | [ shard; point; count ] -> (
                  match (int_of_string_opt shard, int_of_string_opt count) with
                  | Some i, Some c -> Some (i, point, c)
                  | _ -> None)
              | _ -> None)
            (String.split_on_char ',' s))
  in
  let take_crashpoint i =
    let rec go acc = function
      | [] -> None
      | (s, p, c) :: rest when s = i ->
          crash_plan := List.rev_append acc rest;
          Some (p, c)
      | x :: rest -> go (x :: acc) rest
    in
    go [] !crash_plan
  in
  let child_env i =
    let keep s =
      not
        ((String.length s >= 15 && String.sub s 0 15 = "NVC_CRASHPOINT=")
        || (String.length s >= 21 && String.sub s 0 21 = "NVC_SHARD_CRASHPOINT="))
    in
    let base = List.filter keep (Array.to_list (Unix.environment ())) in
    match take_crashpoint i with
    | None -> Array.of_list base
    | Some (p, c) -> Array.of_list (base @ [ Printf.sprintf "NVC_CRASHPOINT=%s:%d" p c ])
  in
  let pids = Array.make n (-1) in
  let spawn_shard i =
    let sock = shard_listen i in
    (match address with
    | `Unix _ -> ( try Sys.remove sock with Sys_error _ -> ())
    | `Tcp _ -> ());
    let args =
      [
        Sys.executable_name; "serve"; "--shard-id"; string_of_int i; "--shards";
        string_of_int n; "--listen"; sock; "--workload"; workload; "--contention"; contention;
        "--engine"; engine; "--seed"; string_of_int seed; "--jobs"; string_of_int jobs;
        "--capacity"; string_of_int capacity; "--batch-target"; string_of_int batch_target;
        "--journal"; Printf.sprintf "%s.shard%d" journal_base i; "--journal-mb";
        string_of_int journal_mb; "--recover";
      ]
    in
    pids.(i) <-
      Unix.create_process_env Sys.executable_name (Array.of_list args) (child_env i) Unix.stdin
        Unix.stdout Unix.stderr
  in
  let respawn i () =
    (match Unix.waitpid [ Unix.WNOHANG ] pids.(i) with
    | 0, _ ->
        (* Unreachable but alive (wedged): kill it before respawning so
           two generations never share a socket. *)
        (try Unix.kill pids.(i) Sys.sigkill with Unix.Unix_error _ -> ());
        (try ignore (Unix.waitpid [] pids.(i)) with Unix.Unix_error _ -> ())
    | _ -> ()
    | exception Unix.Unix_error _ -> ());
    Format.fprintf ppf "nvdb: respawning shard %d@." i;
    spawn_shard i
  in
  for i = 0 to n - 1 do
    spawn_shard i
  done;
  let members =
    Array.init n (fun i ->
        Nv_frontend.Shard_set.remote ~retry_timeout_s:30.0 ~respawn:(respawn i) ~gen ~shard:i
          ~shards:n
          (Cli.parse_address (shard_listen i)))
  in
  let shard_set = Nv_frontend.Shard_set.cluster members in
  let journal, recovery =
    if Sys.file_exists journal_base then begin
      if not recover then
        failwith
          (Printf.sprintf
             "nvdb serve: journal %s already exists; pass --recover to replay it, or remove it \
              for a fresh start"
             journal_base);
      let opened = Nv_frontend.Journal.load ~path:journal_base ~meta in
      let records = opened.Nv_frontend.Journal.records in
      Format.fprintf ppf "nvdb: recovering router journal; re-driving %d batches%s@."
        (List.length records)
        (if opened.Nv_frontend.Journal.torn_tail then " (torn tail discarded)" else "");
      ( opened.Nv_frontend.Journal.journal,
        Some
          { Nv_frontend.Server.rec_records = records; rec_sessions = []; rec_batches_done = 0 }
      )
    end
    else
      ( Nv_frontend.Journal.create ~size:(journal_mb * 1024 * 1024) ~path:journal_base ~meta (),
        None )
  in
  let stop = ref false in
  let handler = Sys.Signal_handle (fun _ -> stop := true) in
  Sys.set_signal Sys.sigterm handler;
  Sys.set_signal Sys.sigint handler;
  let o = Cli.observability ~trace:trace_file ~metrics:metrics_file () in
  Format.fprintf ppf "nvdb: routing %s on %s (%d shards, gen %d; batch %d, deadline %d ticks)@."
    w.Nv_workloads.Workload.name listen n gen batch_target deadline;
  let stats_oc =
    match stats_out with
    | Some file when stats_interval > 0.0 -> Some (open_out file)
    | _ -> None
  in
  let on_stats =
    if stats_interval > 0.0 then
      Some
        (fun json ->
          match stats_oc with
          | Some oc ->
              output_string oc json;
              output_char oc '\n';
              Stdlib.flush oc
          | None -> Format.fprintf ppf "%s@." json)
    else None
  in
  let stats =
    Nv_frontend.Server.serve ?tracer:o.Cli.tracer ?metrics:o.Cli.metrics ~journal ?recovery
      ~should_stop:(fun () -> !stop)
      ?on_stats ~shards:shard_set ~registry ~tables:w.Nv_workloads.Workload.tables
      (Nv_frontend.Server.config
         ~batcher:(Nv_frontend.Batcher.config ~batch_target ~deadline_ticks:deadline ?max_pending ())
         ~once ~stats_interval_s:stats_interval address)
  in
  (match stats_oc with Some oc -> close_out oc | None -> ());
  Format.fprintf ppf "clients served    %d@." stats.Nv_frontend.Server.clients_served;
  Format.fprintf ppf "admitted          %d@." stats.Nv_frontend.Server.admitted;
  Format.fprintf ppf "committed         %d@." stats.Nv_frontend.Server.committed;
  Format.fprintf ppf "aborted           %d@." stats.Nv_frontend.Server.aborted;
  Format.fprintf ppf "rejected          %d@." stats.Nv_frontend.Server.rejected;
  Format.fprintf ppf "replayed          %d@." stats.Nv_frontend.Server.replayed;
  Format.fprintf ppf "epochs            %d@." stats.Nv_frontend.Server.epochs;
  Format.fprintf ppf "protocol errors   %d@." stats.Nv_frontend.Server.protocol_errors;
  Format.fprintf ppf "state digest      %Lx@." stats.Nv_frontend.Server.digest;
  Format.fprintf ppf "journal records   %d@." (Nv_frontend.Journal.record_count journal);
  Format.fprintf ppf "journal bytes     %d@." (Nv_frontend.Journal.used_bytes journal);
  Format.fprintf ppf "shard respawns    %d@." (Nv_frontend.Shard_set.respawns shard_set);
  (* No pmem CRC line: the images live in the shard processes; the
     cluster oracle is the placement-independent state digest. *)
  Nv_frontend.Shard_set.close shard_set;
  Nv_frontend.Journal.close journal;
  Array.iter (fun pid -> try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ()) pids;
  Array.iter (fun pid -> try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()) pids;
  o.Cli.flush ();
  if stats.Nv_frontend.Server.protocol_errors > 0 then exit 3

let serve_cmd =
  let batch_target_arg =
    Arg.(
      value & opt int 256
      & info [ "batch-target" ] ~docv:"N" ~doc:"Close a batch at $(docv) admitted transactions.")
  in
  let deadline_arg =
    Arg.(
      value & opt int 8
      & info [ "deadline-ticks" ] ~docv:"N"
          ~doc:"Close an under-filled batch $(docv) event-loop rounds after its oldest arrival.")
  in
  let max_pending_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-pending" ] ~docv:"N"
          ~doc:
            "Admission bound: beyond $(docv) queued transactions submits are rejected as \
             overloaded (default 4x the batch target).")
  in
  let capacity_arg =
    Arg.(
      value & opt int 200_000
      & info [ "capacity" ] ~docv:"TXNS"
          ~doc:"Provision engine pools for $(docv) admitted transactions over the server's life.")
  in
  let once_flag =
    Arg.(
      value & flag
      & info [ "once" ]
          ~doc:"Exit after the first wave of clients has disconnected (instead of Shutdown).")
  in
  let stats_interval_arg =
    Arg.(
      value & opt float 0.0
      & info [ "stats-interval" ] ~docv:"SECS"
          ~doc:
            "Flush a live-statistics JSON line (the $(b,stats) snapshot) every $(docv) seconds \
             while serving; 0 disables the flush.")
  in
  let stats_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "stats-out" ] ~docv:"FILE"
          ~doc:
            "Append the periodic --stats-interval JSON lines to $(docv) instead of standard \
             output.")
  in
  let journal_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"FILE"
          ~doc:
            "Persist every formed batch to a CRC-guarded admission journal at $(docv) before \
             it runs (implies --crash-safe). A crashed server restarted with $(b,--recover) \
             replays it to reproduce the exact pre-crash state.")
  in
  let recover_flag =
    Arg.(
      value & flag
      & info [ "recover" ]
          ~doc:
            "Reopen the --journal file (and its covering checkpoint, if any) and replay the \
             journaled batches before accepting connections.")
  in
  let checkpoint_arg =
    Arg.(
      value & opt int 0
      & info [ "checkpoint-every" ] ~docv:"BATCHES"
          ~doc:
            "Write a covering checkpoint (pmem image + session table) and truncate the journal \
             to it every $(docv) batches; 0 (default) never truncates — the journal keeps full \
             history.")
  in
  let crash_safe_flag =
    Arg.(
      value & flag
      & info [ "crash-safe" ]
          ~doc:
            "Run the engine with the crash-safe persistence discipline (implied by --journal).")
  in
  let journal_mb_arg =
    Arg.(
      value & opt int 8
      & info [ "journal-mb" ] ~docv:"MIB" ~doc:"Size of a freshly created journal region.")
  in
  let run workload contention engine seed jobs listen batch_target deadline max_pending capacity
      once stats_interval stats_out journal_path recover checkpoint_every crash_safe journal_mb
      shards_n shard_id trace_file metrics_file =
    Cli.set_jobs jobs;
    match shard_id with
    | Some sid ->
        serve_shard ~workload ~contention ~engine ~seed ~capacity ~batch_target ~journal_path
          ~recover ~journal_mb ~listen ~shards:(max shards_n 1) ~sid
    | None when shards_n > 1 ->
        serve_router ~workload ~contention ~engine ~seed ~jobs ~listen ~batch_target ~deadline
          ~max_pending ~capacity ~once ~stats_interval ~stats_out ~journal_path ~recover
          ~checkpoint_every ~journal_mb ~shards:shards_n ~trace_file ~metrics_file
    | None ->
    let w, growth = Cli.resolve_workload workload contention in
    let spec = Cli.resolve_engine engine in
    let spec =
      if crash_safe || journal_path <> None then
        { spec with Nv_harness.Engine.crash_safe = true }
      else spec
    in
    let address = Cli.parse_address listen in
    if checkpoint_every > 0 && journal_path = None then
      failwith "nvdb serve: --checkpoint-every requires --journal";
    if recover && journal_path = None then failwith "nvdb serve: --recover requires --journal";
    let batcher =
      Nv_frontend.Batcher.config ~batch_target ~deadline_ticks:deadline ?max_pending
        ~checkpoint_every ()
    in
    let setup =
      Nv_harness.Engine.setup
        ~epochs:((capacity / batch_target) + 1)
        ~epoch_txns:batch_target ~seed ~insert_growth:growth ()
    in
    let o = Cli.observability ~trace:trace_file ~metrics:metrics_file () in
    let registry = Nv_frontend.Proc.of_workload w in
    let meta = Nv_frontend.Restart.meta ~workload ~contention ~engine ~seed in
    let cold_start () =
      let (Engine_intf.Packed ((module E), db) as engine) =
        Nv_harness.Engine.instantiate spec setup w
      in
      E.bulk_load db (w.Nv_workloads.Workload.load ());
      engine
    in
    let journal, recovery, engine =
      match journal_path with
      | None -> (None, None, cold_start ())
      | Some path when Sys.file_exists path ->
          (* A leftover journal silently ignored would break the one
             property this subsystem sells: admitted means survivable. *)
          if not recover then
            failwith
              (Printf.sprintf
                 "nvdb serve: journal %s already exists; pass --recover to replay it, or remove \
                  it for a fresh start"
                 path);
          let opened = Nv_frontend.Journal.load ~path ~meta in
          let boot = Nv_frontend.Restart.boot spec setup w ~registry opened in
          let replayable =
            List.length
              (List.filter
                 (fun r -> r.Nv_frontend.Journal.r_batch >= boot.Nv_frontend.Restart.batches_done)
                 opened.Nv_frontend.Journal.records)
          in
          Format.fprintf ppf "nvdb: recovering %s; replaying %d journaled batches%s@."
            (if boot.Nv_frontend.Restart.from_checkpoint then
               Printf.sprintf "from checkpoint (%d batches covered)"
                 boot.Nv_frontend.Restart.batches_done
             else "from cold image")
            replayable
            (if opened.Nv_frontend.Journal.torn_tail then " (torn tail discarded)" else "");
          ( Some opened.Nv_frontend.Journal.journal,
            Some
              {
                Nv_frontend.Server.rec_records = opened.Nv_frontend.Journal.records;
                rec_sessions = boot.Nv_frontend.Restart.sessions;
                rec_batches_done = boot.Nv_frontend.Restart.batches_done;
              },
            boot.Nv_frontend.Restart.engine )
      | Some path ->
          if recover then
            Format.fprintf ppf "nvdb: --recover with no journal at %s; cold start@." path;
          let j =
            Nv_frontend.Journal.create ~size:(journal_mb * 1024 * 1024) ~path ~meta ()
          in
          (Some j, None, cold_start ())
    in
    let (Engine_intf.Packed ((module E), db)) = engine in
    E.set_observability ?tracer:o.Cli.tracer ?metrics:o.Cli.metrics db;
    (* Graceful stop on SIGTERM/SIGINT: the select loop notices the flag
       on its next round, drains, flushes, checkpoints (if on a cadence)
       and exits 0 — same path as a wire Shutdown. *)
    let stop = ref false in
    let handler = Sys.Signal_handle (fun _ -> stop := true) in
    Sys.set_signal Sys.sigterm handler;
    Sys.set_signal Sys.sigint handler;
    Format.fprintf ppf "nvdb: serving %s on %s (%s; batch %d, deadline %d ticks)@."
      w.Nv_workloads.Workload.name listen
      (Nv_harness.Engine.label spec w)
      batch_target deadline;
    let stats_oc =
      match stats_out with
      | Some file when stats_interval > 0.0 -> Some (open_out file)
      | _ -> None
    in
    let on_stats =
      if stats_interval > 0.0 then
        Some
          (fun json ->
            match stats_oc with
            | Some oc ->
                output_string oc json;
                output_char oc '\n';
                Stdlib.flush oc
            | None -> Format.fprintf ppf "%s@." json)
      else None
    in
    let stats =
      Nv_frontend.Server.serve ?tracer:o.Cli.tracer ?metrics:o.Cli.metrics ?journal ?recovery
        ~should_stop:(fun () -> !stop)
        ?on_stats
        ~shards:(Nv_frontend.Shard_set.local ~engine ~tables:w.Nv_workloads.Workload.tables)
        ~registry ~tables:w.Nv_workloads.Workload.tables
        (Nv_frontend.Server.config ~batcher ~once ~stats_interval_s:stats_interval address)
    in
    (match stats_oc with Some oc -> close_out oc | None -> ());
    Format.fprintf ppf "clients served    %d@." stats.Nv_frontend.Server.clients_served;
    Format.fprintf ppf "admitted          %d@." stats.Nv_frontend.Server.admitted;
    Format.fprintf ppf "committed         %d@." stats.Nv_frontend.Server.committed;
    Format.fprintf ppf "aborted           %d@." stats.Nv_frontend.Server.aborted;
    Format.fprintf ppf "rejected          %d@." stats.Nv_frontend.Server.rejected;
    Format.fprintf ppf "replayed          %d@." stats.Nv_frontend.Server.replayed;
    Format.fprintf ppf "epochs            %d@." stats.Nv_frontend.Server.epochs;
    Format.fprintf ppf "protocol errors   %d@." stats.Nv_frontend.Server.protocol_errors;
    Format.fprintf ppf "state digest      %Lx@." stats.Nv_frontend.Server.digest;
    (match journal with
    | Some j ->
        (* The parting fingerprints the chaos oracle replays toward:
           journal occupancy plus a CRC of the full pmem image. *)
        Format.fprintf ppf "journal records   %d@." (Nv_frontend.Journal.record_count j);
        Format.fprintf ppf "journal bytes     %d@." (Nv_frontend.Journal.used_bytes j);
        let pm = E.pmem db in
        let image = Nv_nvmm.Pmem.read_bytes pm ~off:0 ~len:(Nv_nvmm.Pmem.size pm) in
        Format.fprintf ppf "pmem crc          %08lx@."
          (Nv_util.Crc32c.bytes image 0 (Bytes.length image));
        Nv_frontend.Journal.close j
    | None -> ());
    o.Cli.flush ();
    if stats.Nv_frontend.Server.protocol_errors > 0 then exit 3
  in
  Cmd.v
    (Cmd.info "serve" ~doc:"Serve the wire protocol on a socket, batching clients into epochs")
    Term.(
      const run $ Cli.workload $ Cli.contention $ Cli.engine $ Cli.seed $ Cli.jobs $ Cli.listen
      $ batch_target_arg $ deadline_arg $ max_pending_arg $ capacity_arg $ once_flag
      $ stats_interval_arg $ stats_out_arg $ journal_arg $ recover_flag $ checkpoint_arg
      $ crash_safe_flag $ journal_mb_arg $ Cli.shards $ Cli.shard_id $ Cli.trace $ Cli.metrics)

let loadgen_cmd =
  let clients_arg =
    Arg.(value & opt int 8 & info [ "clients" ] ~docv:"N" ~doc:"Concurrent client connections.")
  in
  let txns_arg =
    Arg.(value & opt int 100 & info [ "txns" ] ~docv:"N" ~doc:"Transactions per client.")
  in
  let window_arg =
    Arg.(
      value & opt int 1
      & info [ "window" ] ~docv:"N"
          ~doc:"Max in-flight calls per client (1 = closed loop; large = open-loop overload).")
  in
  let think_arg =
    Arg.(
      value & opt int 0
      & info [ "think" ] ~docv:"TICKS" ~doc:"Think time in loop rounds after each completion.")
  in
  let shutdown_flag =
    Arg.(
      value & flag
      & info [ "shutdown" ] ~doc:"Ask the server to drain and exit once every client is done.")
  in
  let reconnect_flag =
    Arg.(
      value & flag
      & info [ "reconnect" ]
          ~doc:
            "Survive dropped connections: back off (jittered exponential), resume the session \
             and retransmit every unanswered call.")
  in
  let retry_timeout_arg =
    Arg.(
      value & opt float 30.0
      & info [ "retry-timeout" ] ~docv:"SECS"
          ~doc:"With --reconnect: fail a client once the server stays unreachable this long.")
  in
  let run workload contention seed listen router clients txns window think shutdown reconnect
      retry_timeout =
    let w, _growth = Cli.resolve_workload workload contention in
    (* Against a routed cluster, clients talk to the router only; the
       wire protocol is identical, so --router is just an address. *)
    let address = Cli.parse_address (Option.value ~default:listen router) in
    let cfg =
      Nv_frontend.Loadgen.config ~clients ~txns_per_client:txns ~seed ~window ~think_ticks:think
        ~shutdown ~reconnect ~retry_timeout_s:retry_timeout address
    in
    let stats = Nv_frontend.Loadgen.run cfg w in
    Format.fprintf ppf "sent              %d@." stats.Nv_frontend.Loadgen.sent;
    Format.fprintf ppf "committed         %d@." stats.Nv_frontend.Loadgen.committed;
    Format.fprintf ppf "aborted           %d@." stats.Nv_frontend.Loadgen.aborted;
    Format.fprintf ppf "rejected          %d@." stats.Nv_frontend.Loadgen.rejected;
    Format.fprintf ppf "protocol errors   %d@." stats.Nv_frontend.Loadgen.protocol_errors;
    Format.fprintf ppf "reconnects        %d@." stats.Nv_frontend.Loadgen.reconnects;
    Format.fprintf ppf "duplicates        %d@." stats.Nv_frontend.Loadgen.duplicates;
    let lat = stats.Nv_frontend.Loadgen.latency in
    if Nv_util.Histogram.count lat > 0 then
      Format.fprintf ppf "latency (wall)    p50 %.3f ms, p99 %.3f ms, max %.3f ms@."
        (Nv_util.Histogram.percentile lat 50.0 /. 1e6)
        (Nv_util.Histogram.percentile lat 99.0 /. 1e6)
        (Nv_util.Histogram.max_value lat /. 1e6);
    (match stats.Nv_frontend.Loadgen.digests with
    | d :: _ -> Format.fprintf ppf "state digest      %Lx@." d
    | [] -> ());
    if stats.Nv_frontend.Loadgen.protocol_errors > 0 then exit 3
  in
  Cmd.v
    (Cmd.info "loadgen" ~doc:"Drive a running nvdb server with concurrent clients")
    Term.(
      const run $ Cli.workload $ Cli.contention $ Cli.seed $ Cli.listen $ Cli.router
      $ clients_arg $ txns_arg $ window_arg $ think_arg $ shutdown_flag $ reconnect_flag
      $ retry_timeout_arg)

(* Interrogate a live server: one connection, one [Stats] frame, print
   the JSON snapshot it answers with. No [Hello] — monitoring must not
   count as a served client. *)
let stats_cmd =
  let connect_fd = function
    | `Unix path ->
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_UNIX path);
        fd
    | `Tcp (host, port) ->
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        let addr =
          try Unix.inet_addr_of_string host
          with _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
        in
        Unix.connect fd (Unix.ADDR_INET (addr, port));
        fd
  in
  let run listen router =
    let listen = Option.value ~default:listen router in
    let address = Cli.parse_address listen in
    let fd =
      try connect_fd address
      with Unix.Unix_error (e, _, _) ->
        Format.eprintf "nvdb stats: cannot connect to %s: %s@." listen (Unix.error_message e);
        exit 1
    in
    let frame = Wire.encode_request Wire.Stats in
    let off = ref 0 in
    while !off < Bytes.length frame do
      off := !off + Unix.write fd frame !off (Bytes.length frame - !off)
    done;
    let reader = Wire.Reader.create () in
    let buf = Bytes.create 65536 in
    let rec next () =
      match Wire.Reader.next_payload reader with
      | Some payload -> Wire.decode_response payload
      | None -> (
          match Unix.read fd buf 0 (Bytes.length buf) with
          | 0 ->
              Format.eprintf "nvdb stats: server closed the connection before answering@.";
              exit 1
          | n ->
              Wire.Reader.feed reader buf ~off:0 ~len:n;
              next ())
    in
    (match next () with
    | Wire.Stats_ok { json } -> Format.fprintf ppf "%s@." json
    | _ ->
        Format.eprintf "nvdb stats: unexpected response to Stats@.";
        exit 3
    | exception Wire.Protocol_error msg ->
        Format.eprintf "nvdb stats: protocol error: %s@." msg;
        exit 3);
    try Unix.close fd with Unix.Unix_error _ -> ()
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Fetch a live statistics snapshot (JSON) from a running nvdb server")
    Term.(const run $ Cli.listen $ Cli.router)

(* Placement probe: where does a key live in an N-shard cluster? The
   hash is the one the router, the shards and Nvcaracal.Partition all
   share, so this answers "which process do I strace". *)
let route_cmd =
  let table_arg =
    Arg.(value & opt int 0 & info [ "table" ] ~docv:"ID" ~doc:"Table the keys belong to.")
  in
  let keys_arg =
    Arg.(value & pos_all string [] & info [] ~docv:"KEY" ~doc:"Keys (int64) to place.")
  in
  let run shards table keys =
    if shards < 1 then failwith "nvdb route: --shards must be >= 1";
    if keys = [] then failwith "nvdb route: give at least one key";
    List.iter
      (fun k ->
        match Int64.of_string_opt k with
        | None -> failwith (Printf.sprintf "nvdb route: bad key %S" k)
        | Some key ->
            Format.fprintf ppf "table %d key %Ld -> shard %d@." table key
              (Nv_frontend.Shard.owner ~shards ~table ~key))
      keys
  in
  Cmd.v
    (Cmd.info "route"
       ~doc:"Print which shard of an N-shard cluster owns each key (the placement hash)")
    Term.(const run $ Cli.shards $ table_arg $ keys_arg)

(* Deterministic serving-pipeline run: the socket server's Batcher
   driven in process by seeded synthetic clients with a manual tick
   clock. No sockets, no wall-clock-dependent control flow, so the
   admission counters, digest and metrics records are byte-stable —
   what scripts/golden_check.sh pins for the front end. *)
let serve_sim_cmd =
  let clients_arg =
    Arg.(value & opt int 8 & info [ "clients" ] ~docv:"N" ~doc:"Synthetic client streams.")
  in
  let txns_arg =
    Arg.(
      value & opt int 100
      & info [ "txns" ] ~docv:"N" ~doc:"Transactions per client (one per client per tick).")
  in
  let batch_target_arg =
    Arg.(
      value & opt int 128
      & info [ "batch-target" ] ~docv:"N" ~doc:"Close a batch at $(docv) admitted transactions.")
  in
  let deadline_arg =
    Arg.(
      value & opt int 4
      & info [ "deadline-ticks" ] ~docv:"N"
          ~doc:"Close an under-filled batch $(docv) ticks after its oldest arrival.")
  in
  let run workload contention engine seed jobs clients txns batch_target deadline metrics_file =
    Cli.set_jobs jobs;
    let w, growth = Cli.resolve_workload workload contention in
    let spec = Cli.resolve_engine engine in
    let o = Cli.observability ~trace:None ~metrics:metrics_file () in
    let setup =
      Nv_harness.Engine.setup
        ~epochs:((clients * txns / batch_target) + 2)
        ~epoch_txns:batch_target ~seed ~insert_growth:growth ()
    in
    let (Engine_intf.Packed ((module E), db) as engine) =
      Nv_harness.Engine.instantiate spec setup w
    in
    E.bulk_load db (w.Nv_workloads.Workload.load ());
    E.set_observability ?metrics:o.Cli.metrics db;
    let registry = Nv_frontend.Proc.of_workload w in
    let b =
      Nv_frontend.Batcher.create
        ~cfg:(Nv_frontend.Batcher.config ~batch_target ~deadline_ticks:deadline ())
        ?metrics:o.Cli.metrics
        ~shards:(Nv_frontend.Shard_set.local ~engine ~tables:w.Nv_workloads.Workload.tables)
        ~registry ~tables:w.Nv_workloads.Workload.tables ()
    in
    let rngs = Array.init clients (fun i -> Nv_util.Rng.create (seed + i)) in
    let handles =
      Array.init clients (fun _ -> Nv_frontend.Batcher.connect b ~reply:(Some ignore))
    in
    let rejected_submits = ref 0 in
    for round = 0 to txns - 1 do
      Array.iteri
        (fun i rng ->
          let proc, args = w.Nv_workloads.Workload.gen_call rng in
          match Nv_frontend.Batcher.submit b handles.(i) ~req:round ~proc ~args with
          | `Admitted | `Replayed _ | `Duplicate -> ()
          | `Rejected _ -> incr rejected_submits)
        rngs;
      Nv_frontend.Batcher.tick b
    done;
    Nv_frontend.Batcher.drain b;
    Format.fprintf ppf "clients           %d@." clients;
    Format.fprintf ppf "admitted          %d@." (Nv_frontend.Batcher.admitted b);
    Format.fprintf ppf "committed         %d@." (Nv_frontend.Batcher.committed b);
    Format.fprintf ppf "aborted           %d@." (Nv_frontend.Batcher.aborted b);
    Format.fprintf ppf "rejected          %d@." !rejected_submits;
    Format.fprintf ppf "deferred          %d@." (Nv_frontend.Batcher.deferred_total b);
    Format.fprintf ppf "epochs            %d@." (Nv_frontend.Batcher.epochs_run b);
    Format.fprintf ppf "state digest      %Lx@." (Nv_frontend.Batcher.state_digest b);
    o.Cli.flush ()
  in
  Cmd.v
    (Cmd.info "serve-sim"
       ~doc:
         "Drive the serving pipeline in process with seeded clients and a manual tick clock \
          (deterministic; used for front-end golden checks)")
    Term.(
      const run $ Cli.workload $ Cli.contention $ Cli.engine $ Cli.seed $ Cli.jobs $ clients_arg
      $ txns_arg $ batch_target_arg $ deadline_arg $ Cli.metrics)

(* Kill-9 chaos campaign: serve + loadgen as child processes, a seeded
   plan of crashpoints, restart-with---recover supervision, then the
   exactly-once and pmem-image-oracle checks (see Nv_frontend.Chaos). *)
let chaos_cmd =
  let iters_arg =
    Arg.(
      value & opt int 25
      & info [ "iterations" ] ~docv:"N"
          ~doc:"Kill-9s to inject before letting the campaign finish gracefully.")
  in
  let seed_arg =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Crashpoint-plan seed.")
  in
  let clients_arg =
    Arg.(value & opt int 8 & info [ "clients" ] ~docv:"N" ~doc:"Load-generator clients.")
  in
  let txns_arg =
    Arg.(value & opt int 200 & info [ "txns" ] ~docv:"N" ~doc:"Transactions per client.")
  in
  let ckpt_arg =
    Arg.(
      value & opt int 0
      & info [ "checkpoint-every" ] ~docv:"BATCHES"
          ~doc:
            "Server checkpoint cadence. 0 recovers by full replay every restart (the strongest \
             oracle); positive values exercise the checkpoint+truncate path too.")
  in
  let workload_arg =
    Arg.(
      value & opt string "ycsb-tiny"
      & info [ "w"; "workload" ] ~docv:"NAME"
          ~doc:"Workload to serve (small ones restart much faster).")
  in
  let contention_arg =
    Arg.(value & opt string "med" & info [ "c"; "contention" ] ~docv:"LEVEL" ~doc:"Contention.")
  in
  let dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "dir" ] ~docv:"DIR"
          ~doc:"Artifact directory (socket, journal, process logs); default under TMPDIR.")
  in
  let keep_flag =
    Arg.(value & flag & info [ "keep" ] ~doc:"Keep the artifact directory even on success.")
  in
  let timeout_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout" ] ~docv:"SECS"
          ~doc:"Campaign wall-clock deadline (default scales with --iterations).")
  in
  let run seed iterations clients txns checkpoint_every workload contention engine shards dir
      keep timeout =
    let cfg =
      Nv_frontend.Chaos.config ~seed ~iterations ~clients ~txns_per_client:txns
        ~checkpoint_every ~workload ~contention ~engine ~shards ?dir ~keep ?timeout_s:timeout
        ~log:(fun line -> Format.fprintf ppf "%s@." line)
        ~exe:Sys.executable_name ()
    in
    let o = Nv_frontend.Chaos.run cfg in
    Format.fprintf ppf "@.crashes           %d@." o.Nv_frontend.Chaos.crashes;
    Format.fprintf ppf "recoveries        %d@." o.Nv_frontend.Chaos.recoveries;
    Format.fprintf ppf "reconnects        %d@." o.Nv_frontend.Chaos.reconnects;
    Format.fprintf ppf "sent              %d@." o.Nv_frontend.Chaos.sent;
    Format.fprintf ppf "committed         %d@." o.Nv_frontend.Chaos.committed;
    Format.fprintf ppf "aborted           %d@." o.Nv_frontend.Chaos.aborted;
    Format.fprintf ppf "rejected          %d@." o.Nv_frontend.Chaos.rejected;
    Format.fprintf ppf "duplicates        %d@." o.Nv_frontend.Chaos.duplicates;
    (match o.Nv_frontend.Chaos.artifacts with
    | Some d -> Format.fprintf ppf "artifacts         %s@." d
    | None -> ());
    List.iter
      (fun f -> Format.fprintf ppf "FAILURE: %s@." f)
      o.Nv_frontend.Chaos.failures;
    if o.Nv_frontend.Chaos.failures <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Kill-9 a journaled server at seeded crashpoints, recover with --recover each time, \
          and check exactly-once semantics plus the pmem-image oracle. With --shards N, kill \
          shard processes of a routed cluster instead and check the cross-shard-count digest \
          oracle")
    Term.(
      const run $ seed_arg $ iters_arg $ clients_arg $ txns_arg $ ckpt_arg $ workload_arg
      $ contention_arg $ Cli.engine $ Cli.shards $ dir_arg $ keep_flag $ timeout_arg)

let () =
  let info =
    Cmd.info "nvdb" ~version:"1.0.0"
      ~doc:"NVCaracal: a deterministic database with NVMM storage (EuroSys'23 reproduction)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            run_cmd;
            recover_cmd;
            mem_cmd;
            fuzz_cmd;
            scrub_cmd;
            serve_cmd;
            loadgen_cmd;
            route_cmd;
            stats_cmd;
            serve_sim_cmd;
            chaos_cmd;
          ]))
