(* nvdb: command-line driver for the NVCaracal reproduction.

   Subcommands:
     run      — run a benchmark workload on a chosen engine/design
     recover  — run, crash mid-epoch, recover, and report the breakdown
     mem      — run and print the DRAM/NVMM consumption breakdown

   Examples:
     dune exec bin/nvdb.exe -- run --workload smallbank --contention high
     dune exec bin/nvdb.exe -- run --workload ycsb --engine zen
     dune exec bin/nvdb.exe -- recover --workload tpcc --epochs 4
     dune exec bin/nvdb.exe -- mem --workload ycsb *)

open Cmdliner
module Runner = Nv_harness.Runner
module Config = Nvcaracal.Config

let ppf = Format.std_formatter

(* ------------------------------------------------------------------ *)
(* Shared arguments                                                    *)

let workload_arg =
  let doc = "Benchmark: ycsb, ycsb-smallrow, smallbank, or tpcc." in
  Arg.(value & opt string "ycsb" & info [ "w"; "workload" ] ~docv:"NAME" ~doc)

let contention_arg =
  let doc = "Contention level: low, med (YCSB only), or high." in
  Arg.(value & opt string "low" & info [ "c"; "contention" ] ~docv:"LEVEL" ~doc)

let epochs_arg =
  Arg.(value & opt int 8 & info [ "epochs" ] ~docv:"N" ~doc:"Number of epochs to run.")

let txns_arg =
  Arg.(value & opt int 1000 & info [ "txns" ] ~docv:"N" ~doc:"Transactions per epoch.")

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Workload seed.")

let jobs_arg =
  let doc =
    "Domain-pool width for the engine's per-core phase loops (default from \\$(b,NVC_JOBS), \
     else 1 = serial). Seeded results are byte-identical at any value."
  in
  Arg.(
    value
    & opt int !Nv_harness.Engine.default_jobs
    & info [ "j"; "jobs" ] ~docv:"N" ~doc)

(* The pool width is global harness state, set once at parse time. *)
let set_jobs jobs = Nv_harness.Engine.default_jobs := max 1 jobs

let engine_arg =
  let doc =
    "Engine or design variant: nvcaracal, all-nvmm, hybrid, no-logging, all-dram, wal, aria, \
     or zen."
  in
  Arg.(value & opt string "nvcaracal" & info [ "e"; "engine" ] ~docv:"ENGINE" ~doc)

let trace_arg =
  let doc = "Record simulated-time spans and write a Perfetto/Chrome trace to $(docv)." in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let metrics_arg =
  let doc = "Write per-epoch metric snapshots (JSON lines) to $(docv)." in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

(* Build the sinks requested on the command line; the returned flush
   writes the files once the run completed. *)
let observability trace_file metrics_file =
  let tracer = match trace_file with None -> None | Some _ -> Some (Nv_obs.Tracer.create ()) in
  let metrics =
    match metrics_file with None -> None | Some _ -> Some (Nv_obs.Metrics.create ())
  in
  let write what f file =
    try f file
    with Sys_error msg ->
      Format.eprintf "nvdb: cannot write %s file: %s@." what msg;
      exit 1
  in
  let flush () =
    (match (trace_file, tracer) with
    | Some file, Some tr ->
        write "trace" (Nv_obs.Trace_export.write_file tr) file;
        Format.fprintf ppf "wrote %d trace events to %s (open in ui.perfetto.dev)@."
          (Nv_obs.Tracer.event_count tr)
          file
    | _ -> ());
    match (metrics_file, metrics) with
    | Some file, Some m ->
        write "metrics" (Nv_obs.Metrics.write_jsonl m) file;
        Format.fprintf ppf "wrote %d epoch metric records to %s@."
          (List.length (Nv_obs.Metrics.records m))
          file
    | _ -> ()
  in
  (tracer, metrics, flush)

let resolve_workload name contention =
  let level3 =
    match contention with
    | "low" -> `Low
    | "med" | "medium" -> `Medium
    | "high" -> `High
    | other -> failwith (Printf.sprintf "unknown contention %S" other)
  in
  let level2 = match level3 with `Medium -> `High | (`Low | `High) as l -> l in
  match name with
  | "ycsb" ->
      ( Nv_workloads.Ycsb.(make (with_contention level3 default)),
        0 (* insert growth *) )
  | "ycsb-smallrow" -> (Nv_workloads.Ycsb.(make (smallrow (with_contention level3 default))), 0)
  | "smallbank" -> (Nv_workloads.Smallbank.(make (with_contention level2 default)), 0)
  | "tpcc" -> (Nv_workloads.Tpcc.(make (with_contention level2 default)), 15)
  | other -> failwith (Printf.sprintf "unknown workload %S" other)

let print_result (r : Runner.result) =
  Format.fprintf ppf "workload        %s@." r.Runner.label;
  Format.fprintf ppf "transactions    %d (%d aborted)@." r.Runner.txns r.Runner.aborted;
  Format.fprintf ppf "simulated time  %.3f ms@." (r.Runner.sim_seconds *. 1e3);
  Format.fprintf ppf "throughput      %s@." (Nv_harness.Tablefmt.mtps r.Runner.throughput);
  Format.fprintf ppf "transient       %s of version writes stayed in DRAM@."
    (Nv_harness.Tablefmt.pct r.Runner.transient_frac);
  Format.fprintf ppf "gc              %d minor, %d major@." r.Runner.minor_gc r.Runner.major_gc;
  Format.fprintf ppf "cache           %d hits / %d misses@." r.Runner.cache_hits
    r.Runner.cache_misses;
  if r.Runner.log_bytes > 0 then
    Format.fprintf ppf "input log       %s@." (Nv_harness.Tablefmt.bytes r.Runner.log_bytes);
  Format.fprintf ppf "epoch latency   %a@." Nv_util.Histogram.pp r.Runner.epoch_latency;
  if r.Runner.last_epoch_phases <> [] then
    Format.fprintf ppf "phase breakdown %a@." Nvcaracal.Report.pp_phases
      r.Runner.last_epoch_phases

let run_cmd =
  let run workload contention engine epochs txns seed jobs trace_file metrics_file =
    set_jobs jobs;
    let w, growth = resolve_workload workload contention in
    let setup = Runner.setup ~epochs ~epoch_txns:txns ~seed ~insert_growth:growth () in
    let tracer, metrics, flush_obs = observability trace_file metrics_file in
    let spec =
      match Nv_harness.Engine.of_string engine with
      | Some spec -> spec
      | None -> failwith (Printf.sprintf "unknown engine %S" engine)
    in
    print_result (Runner.run ?tracer ?metrics spec setup w);
    flush_obs ()
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run a benchmark workload")
    Term.(
      const run $ workload_arg $ contention_arg $ engine_arg $ epochs_arg $ txns_arg $ seed_arg
      $ jobs_arg $ trace_arg $ metrics_arg)

let recover_cmd =
  let run workload contention epochs txns seed jobs trace_file metrics_file =
    set_jobs jobs;
    let w, growth = resolve_workload workload contention in
    let setup = Runner.setup ~epochs ~epoch_txns:txns ~seed ~insert_growth:growth () in
    let tracer, metrics, flush_obs = observability trace_file metrics_file in
    let { Runner.r_label; report } =
      Runner.run_recovery setup w ~crash_after_txns:(txns * 9 / 10) ?tracer ?metrics ()
    in
    Format.fprintf ppf "workload %s crashed mid-epoch and recovered:@." r_label;
    Format.fprintf ppf "%a@." Nvcaracal.Report.pp_recovery_report report;
    flush_obs ()
  in
  Cmd.v
    (Cmd.info "recover" ~doc:"Crash a run mid-epoch and measure recovery")
    Term.(
      const run $ workload_arg $ contention_arg $ epochs_arg $ txns_arg $ seed_arg $ jobs_arg
      $ trace_arg $ metrics_arg)

let mem_cmd =
  let run workload contention epochs txns seed jobs =
    set_jobs jobs;
    let w, growth = resolve_workload workload contention in
    let setup = Runner.setup ~epochs ~epoch_txns:txns ~seed ~insert_growth:growth () in
    let r = Runner.run_nvcaracal setup w ~variant:Config.Nvcaracal () in
    Format.fprintf ppf "%a@." Nvcaracal.Report.pp_mem_report r.Runner.mem
  in
  Cmd.v
    (Cmd.info "mem" ~doc:"Report DRAM/NVMM consumption for a workload")
    Term.(const run $ workload_arg $ contention_arg $ epochs_arg $ txns_arg $ seed_arg $ jobs_arg)

let fuzz_cmd =
  let iters =
    Arg.(value & opt int 25 & info [ "iterations" ] ~docv:"N" ~doc:"Fuzz iterations.")
  in
  let faults_flag =
    let doc =
      "Fuzz through random media-fault models (torn lines, bit-rot, dead lines) and recover \
       in scrub mode, checking the damage report against the oracle."
    in
    Arg.(value & flag & info [ "faults" ] ~doc)
  in
  let diff_flag =
    let doc =
      "Differential fuzzing: run the same seeded batches through the NVCaracal and Zen \
       engines behind the shared engine interface and compare committed state."
    in
    Arg.(value & flag & info [ "diff" ] ~doc)
  in
  let run seed iterations faults diff jobs =
    set_jobs jobs;
    let outcome =
      Nv_harness.Fuzzer.run ~seed ~iterations ~faults ~diff
        ~log:(fun line -> Format.fprintf ppf "%s@." line)
        ()
    in
    Format.fprintf ppf "@.%d iterations, %d crashes injected, %d replays, %d failures@."
      outcome.Nv_harness.Fuzzer.iterations outcome.Nv_harness.Fuzzer.crashes_injected
      outcome.Nv_harness.Fuzzer.replays
      (List.length outcome.Nv_harness.Fuzzer.failures);
    if diff then
      Format.fprintf ppf "%d NVCaracal-vs-Zen differential iterations@."
        outcome.Nv_harness.Fuzzer.diffed
    else if faults then
      Format.fprintf ppf
        "%d faulted, %d mid-recovery crashes, %d salvage recoveries, %d detection-only@."
        outcome.Nv_harness.Fuzzer.faulted outcome.Nv_harness.Fuzzer.recrashes
        outcome.Nv_harness.Fuzzer.salvages outcome.Nv_harness.Fuzzer.detection_only;
    List.iter (fun f -> Format.fprintf ppf "FAILURE: %s@." f) outcome.Nv_harness.Fuzzer.failures;
    if outcome.Nv_harness.Fuzzer.failures <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "fuzz" ~doc:"Randomized crash-recovery fuzzing against an oracle")
    Term.(const run $ seed_arg $ iters $ faults_flag $ diff_flag $ jobs_arg)

let scrub_cmd =
  let fault_arg =
    let doc = "Fault model for the crash: legal, torn, rot, or dead." in
    Arg.(value & opt string "rot" & info [ "fault" ] ~docv:"KIND" ~doc)
  in
  let run workload contention epochs txns seed jobs fault =
    set_jobs jobs;
    let w, growth = resolve_workload workload contention in
    let setup = Runner.setup ~epochs ~epoch_txns:txns ~seed ~insert_growth:growth () in
    let faults =
      let open Nv_nvmm.Pmem in
      match fault with
      | "legal" -> no_faults
      | "torn" -> { no_faults with torn_frac = 0.5 }
      | "rot" -> { no_faults with rot_lines = 4; rot_max_bits = 3 }
      | "dead" -> { no_faults with dead = 2 }
      | other -> failwith (Printf.sprintf "unknown fault kind %S" other)
    in
    match Runner.run_scrub setup w ~crash_after_txns:(txns * 9 / 10) ~faults () with
    | { Runner.r_label; report } ->
        Format.fprintf ppf "workload %s crashed with %s faults; scrub recovery:@." r_label
          fault;
        Format.fprintf ppf "%a@." Nvcaracal.Report.pp_recovery_report report
    | exception Nv_storage.Meta_region.Corrupt msg ->
        Format.fprintf ppf "UNRECOVERABLE: %s@." msg;
        exit 2
    | exception Failure msg ->
        (* E.g. a torn identity header dropped a row the crashed epoch's
           replay then needed: detected loudly, not salvageable. *)
        Format.fprintf ppf "UNRECOVERABLE: corruption broke deterministic replay: %s@." msg;
        exit 2
  in
  Cmd.v
    (Cmd.info "scrub"
       ~doc:"Crash through a media-fault model and recover with checksum scrubbing")
    Term.(
      const run $ workload_arg $ contention_arg $ epochs_arg $ txns_arg $ seed_arg $ jobs_arg
      $ fault_arg)

let () =
  let info =
    Cmd.info "nvdb" ~version:"1.0.0"
      ~doc:"NVCaracal: a deterministic database with NVMM storage (EuroSys'23 reproduction)"
  in
  exit (Cmd.eval (Cmd.group info [ run_cmd; recover_cmd; mem_cmd; fuzz_cmd; scrub_cmd ]))
