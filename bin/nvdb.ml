(* nvdb: command-line driver for the NVCaracal reproduction.

   Subcommands:
     run      — run a benchmark workload on a chosen engine/design
     recover  — run, crash mid-epoch, recover, and report the breakdown
     mem      — run and print the DRAM/NVMM consumption breakdown
     serve    — serve the wire protocol on a socket, batching clients
     loadgen  — drive a running server with concurrent clients

   Examples:
     dune exec bin/nvdb.exe -- run --workload smallbank --contention high
     dune exec bin/nvdb.exe -- run --workload ycsb --engine zen
     dune exec bin/nvdb.exe -- recover --workload tpcc --epochs 4
     dune exec bin/nvdb.exe -- serve --listen /tmp/nvdb.sock &
     dune exec bin/nvdb.exe -- loadgen --clients 32 --txns 100 --shutdown *)

open Cmdliner
module Runner = Nv_harness.Runner
module Cli = Nv_harness.Cli
module Config = Nvcaracal.Config
module Engine_intf = Nvcaracal.Engine_intf

let ppf = Format.std_formatter

let print_result (r : Runner.result) =
  Format.fprintf ppf "workload        %s@." r.Runner.label;
  Format.fprintf ppf "transactions    %d (%d aborted)@." r.Runner.txns r.Runner.aborted;
  Format.fprintf ppf "simulated time  %.3f ms@." (r.Runner.sim_seconds *. 1e3);
  Format.fprintf ppf "throughput      %s@." (Nv_harness.Tablefmt.mtps r.Runner.throughput);
  Format.fprintf ppf "transient       %s of version writes stayed in DRAM@."
    (Nv_harness.Tablefmt.pct r.Runner.transient_frac);
  Format.fprintf ppf "gc              %d minor, %d major@." r.Runner.minor_gc r.Runner.major_gc;
  Format.fprintf ppf "cache           %d hits / %d misses@." r.Runner.cache_hits
    r.Runner.cache_misses;
  if r.Runner.log_bytes > 0 then
    Format.fprintf ppf "input log       %s@." (Nv_harness.Tablefmt.bytes r.Runner.log_bytes);
  Format.fprintf ppf "epoch latency   %a@." Nv_util.Histogram.pp r.Runner.epoch_latency;
  if r.Runner.last_epoch_phases <> [] then
    Format.fprintf ppf "phase breakdown %a@." Nvcaracal.Report.pp_phases
      r.Runner.last_epoch_phases

let run_cmd =
  let run workload contention engine epochs txns seed jobs trace_file metrics_file =
    Cli.set_jobs jobs;
    let w, growth = Cli.resolve_workload workload contention in
    let setup = Runner.setup ~epochs ~epoch_txns:txns ~seed ~insert_growth:growth () in
    let tracer, metrics, flush_obs =
      Cli.observability ~trace:trace_file ~metrics:metrics_file ()
    in
    let spec = Cli.resolve_engine engine in
    print_result (Runner.run ?tracer ?metrics spec setup w);
    flush_obs ()
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run a benchmark workload")
    Term.(
      const run $ Cli.workload $ Cli.contention $ Cli.engine $ Cli.epochs $ Cli.txns $ Cli.seed
      $ Cli.jobs $ Cli.trace $ Cli.metrics)

let recover_cmd =
  let run workload contention epochs txns seed jobs trace_file metrics_file =
    Cli.set_jobs jobs;
    let w, growth = Cli.resolve_workload workload contention in
    let setup = Runner.setup ~epochs ~epoch_txns:txns ~seed ~insert_growth:growth () in
    let tracer, metrics, flush_obs =
      Cli.observability ~trace:trace_file ~metrics:metrics_file ()
    in
    let { Runner.r_label; report } =
      Runner.run_recovery setup w ~crash_after_txns:(txns * 9 / 10) ?tracer ?metrics ()
    in
    Format.fprintf ppf "workload %s crashed mid-epoch and recovered:@." r_label;
    Format.fprintf ppf "%a@." Nvcaracal.Report.pp_recovery_report report;
    flush_obs ()
  in
  Cmd.v
    (Cmd.info "recover" ~doc:"Crash a run mid-epoch and measure recovery")
    Term.(
      const run $ Cli.workload $ Cli.contention $ Cli.epochs $ Cli.txns $ Cli.seed $ Cli.jobs
      $ Cli.trace $ Cli.metrics)

let mem_cmd =
  let run workload contention epochs txns seed jobs =
    Cli.set_jobs jobs;
    let w, growth = Cli.resolve_workload workload contention in
    let setup = Runner.setup ~epochs ~epoch_txns:txns ~seed ~insert_growth:growth () in
    let r = Runner.run_nvcaracal setup w ~variant:Config.Nvcaracal () in
    Format.fprintf ppf "%a@." Nvcaracal.Report.pp_mem_report r.Runner.mem
  in
  Cmd.v
    (Cmd.info "mem" ~doc:"Report DRAM/NVMM consumption for a workload")
    Term.(
      const run $ Cli.workload $ Cli.contention $ Cli.epochs $ Cli.txns $ Cli.seed $ Cli.jobs)

let fuzz_cmd =
  let iters =
    Arg.(value & opt int 25 & info [ "iterations" ] ~docv:"N" ~doc:"Fuzz iterations.")
  in
  let faults_flag =
    let doc =
      "Fuzz through random media-fault models (torn lines, bit-rot, dead lines) and recover \
       in scrub mode, checking the damage report against the oracle."
    in
    Arg.(value & flag & info [ "faults" ] ~doc)
  in
  let diff_flag =
    let doc =
      "Differential fuzzing: run the same seeded batches through the NVCaracal and Zen \
       engines behind the shared engine interface and compare committed state."
    in
    Arg.(value & flag & info [ "diff" ] ~doc)
  in
  let run seed iterations faults diff jobs =
    Cli.set_jobs jobs;
    let outcome =
      Nv_harness.Fuzzer.run ~seed ~iterations ~faults ~diff
        ~log:(fun line -> Format.fprintf ppf "%s@." line)
        ()
    in
    Format.fprintf ppf "@.%d iterations, %d crashes injected, %d replays, %d failures@."
      outcome.Nv_harness.Fuzzer.iterations outcome.Nv_harness.Fuzzer.crashes_injected
      outcome.Nv_harness.Fuzzer.replays
      (List.length outcome.Nv_harness.Fuzzer.failures);
    if diff then
      Format.fprintf ppf "%d NVCaracal-vs-Zen differential iterations@."
        outcome.Nv_harness.Fuzzer.diffed
    else if faults then
      Format.fprintf ppf
        "%d faulted, %d mid-recovery crashes, %d salvage recoveries, %d detection-only@."
        outcome.Nv_harness.Fuzzer.faulted outcome.Nv_harness.Fuzzer.recrashes
        outcome.Nv_harness.Fuzzer.salvages outcome.Nv_harness.Fuzzer.detection_only;
    List.iter (fun f -> Format.fprintf ppf "FAILURE: %s@." f) outcome.Nv_harness.Fuzzer.failures;
    if outcome.Nv_harness.Fuzzer.failures <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "fuzz" ~doc:"Randomized crash-recovery fuzzing against an oracle")
    Term.(const run $ Cli.seed $ iters $ faults_flag $ diff_flag $ Cli.jobs)

let scrub_cmd =
  let fault_arg =
    let doc = "Fault model for the crash: legal, torn, rot, or dead." in
    Arg.(value & opt string "rot" & info [ "fault" ] ~docv:"KIND" ~doc)
  in
  let run workload contention epochs txns seed jobs fault =
    Cli.set_jobs jobs;
    let w, growth = Cli.resolve_workload workload contention in
    let setup = Runner.setup ~epochs ~epoch_txns:txns ~seed ~insert_growth:growth () in
    let faults =
      let open Nv_nvmm.Pmem in
      match fault with
      | "legal" -> no_faults
      | "torn" -> { no_faults with torn_frac = 0.5 }
      | "rot" -> { no_faults with rot_lines = 4; rot_max_bits = 3 }
      | "dead" -> { no_faults with dead = 2 }
      | other -> failwith (Printf.sprintf "unknown fault kind %S" other)
    in
    match Runner.run_scrub setup w ~crash_after_txns:(txns * 9 / 10) ~faults () with
    | { Runner.r_label; report } ->
        Format.fprintf ppf "workload %s crashed with %s faults; scrub recovery:@." r_label
          fault;
        Format.fprintf ppf "%a@." Nvcaracal.Report.pp_recovery_report report
    | exception Nv_storage.Meta_region.Corrupt msg ->
        Format.fprintf ppf "UNRECOVERABLE: %s@." msg;
        exit 2
    | exception Failure msg ->
        (* E.g. a torn identity header dropped a row the crashed epoch's
           replay then needed: detected loudly, not salvageable. *)
        Format.fprintf ppf "UNRECOVERABLE: corruption broke deterministic replay: %s@." msg;
        exit 2
  in
  Cmd.v
    (Cmd.info "scrub"
       ~doc:"Crash through a media-fault model and recover with checksum scrubbing")
    Term.(
      const run $ Cli.workload $ Cli.contention $ Cli.epochs $ Cli.txns $ Cli.seed $ Cli.jobs
      $ fault_arg)

(* ------------------------------------------------------------------ *)
(* Networked front end                                                 *)

let serve_cmd =
  let batch_target_arg =
    Arg.(
      value & opt int 256
      & info [ "batch-target" ] ~docv:"N" ~doc:"Close a batch at $(docv) admitted transactions.")
  in
  let deadline_arg =
    Arg.(
      value & opt int 8
      & info [ "deadline-ticks" ] ~docv:"N"
          ~doc:"Close an under-filled batch $(docv) event-loop rounds after its oldest arrival.")
  in
  let max_pending_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-pending" ] ~docv:"N"
          ~doc:
            "Admission bound: beyond $(docv) queued transactions submits are rejected as \
             overloaded (default 4x the batch target).")
  in
  let capacity_arg =
    Arg.(
      value & opt int 200_000
      & info [ "capacity" ] ~docv:"TXNS"
          ~doc:"Provision engine pools for $(docv) admitted transactions over the server's life.")
  in
  let once_flag =
    Arg.(
      value & flag
      & info [ "once" ]
          ~doc:"Exit after the first wave of clients has disconnected (instead of Shutdown).")
  in
  let run workload contention engine seed jobs listen batch_target deadline max_pending capacity
      once trace_file metrics_file =
    Cli.set_jobs jobs;
    let w, growth = Cli.resolve_workload workload contention in
    let spec = Cli.resolve_engine engine in
    let address = Cli.parse_address listen in
    let batcher = Nv_frontend.Batcher.config ~batch_target ~deadline_ticks:deadline ?max_pending () in
    let setup =
      Nv_harness.Engine.setup
        ~epochs:((capacity / batch_target) + 1)
        ~epoch_txns:batch_target ~seed ~insert_growth:growth ()
    in
    let tracer, metrics, flush_obs =
      Cli.observability ~trace:trace_file ~metrics:metrics_file ()
    in
    let (Engine_intf.Packed ((module E), db) as engine) =
      Nv_harness.Engine.instantiate spec setup w
    in
    E.bulk_load db (w.Nv_workloads.Workload.load ());
    E.set_observability ?tracer ?metrics db;
    let registry = Nv_frontend.Proc.of_workload w in
    Format.fprintf ppf "nvdb: serving %s on %s (%s; batch %d, deadline %d ticks)@."
      w.Nv_workloads.Workload.name listen
      (Nv_harness.Engine.label spec w)
      batch_target deadline;
    let stats =
      Nv_frontend.Server.serve ?tracer ?metrics ~engine ~registry
        ~tables:w.Nv_workloads.Workload.tables
        (Nv_frontend.Server.config ~batcher ~once address)
    in
    Format.fprintf ppf "clients served    %d@." stats.Nv_frontend.Server.clients_served;
    Format.fprintf ppf "admitted          %d@." stats.Nv_frontend.Server.admitted;
    Format.fprintf ppf "committed         %d@." stats.Nv_frontend.Server.committed;
    Format.fprintf ppf "aborted           %d@." stats.Nv_frontend.Server.aborted;
    Format.fprintf ppf "rejected          %d@." stats.Nv_frontend.Server.rejected;
    Format.fprintf ppf "epochs            %d@." stats.Nv_frontend.Server.epochs;
    Format.fprintf ppf "protocol errors   %d@." stats.Nv_frontend.Server.protocol_errors;
    Format.fprintf ppf "state digest      %Lx@." stats.Nv_frontend.Server.digest;
    flush_obs ();
    if stats.Nv_frontend.Server.protocol_errors > 0 then exit 3
  in
  Cmd.v
    (Cmd.info "serve" ~doc:"Serve the wire protocol on a socket, batching clients into epochs")
    Term.(
      const run $ Cli.workload $ Cli.contention $ Cli.engine $ Cli.seed $ Cli.jobs $ Cli.listen
      $ batch_target_arg $ deadline_arg $ max_pending_arg $ capacity_arg $ once_flag $ Cli.trace
      $ Cli.metrics)

let loadgen_cmd =
  let clients_arg =
    Arg.(value & opt int 8 & info [ "clients" ] ~docv:"N" ~doc:"Concurrent client connections.")
  in
  let txns_arg =
    Arg.(value & opt int 100 & info [ "txns" ] ~docv:"N" ~doc:"Transactions per client.")
  in
  let window_arg =
    Arg.(
      value & opt int 1
      & info [ "window" ] ~docv:"N"
          ~doc:"Max in-flight calls per client (1 = closed loop; large = open-loop overload).")
  in
  let think_arg =
    Arg.(
      value & opt int 0
      & info [ "think" ] ~docv:"TICKS" ~doc:"Think time in loop rounds after each completion.")
  in
  let shutdown_flag =
    Arg.(
      value & flag
      & info [ "shutdown" ] ~doc:"Ask the server to drain and exit once every client is done.")
  in
  let run workload contention seed listen clients txns window think shutdown =
    let w, _growth = Cli.resolve_workload workload contention in
    let address = Cli.parse_address listen in
    let cfg =
      Nv_frontend.Loadgen.config ~clients ~txns_per_client:txns ~seed ~window ~think_ticks:think
        ~shutdown address
    in
    let stats = Nv_frontend.Loadgen.run cfg w in
    Format.fprintf ppf "sent              %d@." stats.Nv_frontend.Loadgen.sent;
    Format.fprintf ppf "committed         %d@." stats.Nv_frontend.Loadgen.committed;
    Format.fprintf ppf "aborted           %d@." stats.Nv_frontend.Loadgen.aborted;
    Format.fprintf ppf "rejected          %d@." stats.Nv_frontend.Loadgen.rejected;
    Format.fprintf ppf "protocol errors   %d@." stats.Nv_frontend.Loadgen.protocol_errors;
    (match stats.Nv_frontend.Loadgen.digests with
    | d :: _ -> Format.fprintf ppf "state digest      %Lx@." d
    | [] -> ());
    if stats.Nv_frontend.Loadgen.protocol_errors > 0 then exit 3
  in
  Cmd.v
    (Cmd.info "loadgen" ~doc:"Drive a running nvdb server with concurrent clients")
    Term.(
      const run $ Cli.workload $ Cli.contention $ Cli.seed $ Cli.listen $ clients_arg $ txns_arg
      $ window_arg $ think_arg $ shutdown_flag)

let () =
  let info =
    Cmd.info "nvdb" ~version:"1.0.0"
      ~doc:"NVCaracal: a deterministic database with NVMM storage (EuroSys'23 reproduction)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ run_cmd; recover_cmd; mem_cmd; fuzz_cmd; scrub_cmd; serve_cmd; loadgen_cmd ]))
