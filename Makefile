# Convenience entry points; everything is plain dune underneath.

.PHONY: all build test test-parallel fmt-check golden serve-check check bench profile fuzz diff-fuzz chaos clean

all: build

build:
	dune build

test:
	dune runtest

# Same suite with the engine's domain pool at width 4; all results are
# byte-identical to the serial run, so every test passes unmodified.
test-parallel:
	NVC_JOBS=4 dune runtest --force

# ocamlformat is optional in the dev image; enforce only when present.
fmt-check:
	@if command -v ocamlformat >/dev/null 2>&1; then \
	  dune build @fmt; \
	else \
	  echo "ocamlformat not installed; skipping format check"; \
	fi

# Byte-identity check of a seeded run against the committed golden
# stdout/trace/metrics (see scripts/golden_check.sh).
golden:
	bash scripts/golden_check.sh

# Real-socket smoke of the networked front end: serve on a Unix
# socket, drive 32 concurrent clients for 3200 transactions, assert a
# clean drain/shutdown with zero protocol errors; then a SIGTERM
# drain of a journaled server and a 3-shard routed cluster leg.
serve-check:
	bash scripts/serve_check.sh

check: build test test-parallel fmt-check golden serve-check

bench:
	dune exec bench/main.exe

# Wall-clock profiles (dual-clock observability): run one bench
# experiment and one seeded `nvdb run` with --profile, leaving the
# per-phase wall/allocation breakdowns as JSON under _profile/. The
# phase tables also land on stderr/stdout for a quick look.
profile:
	mkdir -p _profile
	dune exec bench/main.exe -- --only fig5 --profile \
	  --profile-out _profile/bench_fig5_profile.json
	dune exec bin/nvdb.exe -- run -w ycsb -e nvcaracal --epochs 6 --txns 2000 \
	  --profile --profile-out _profile/run_ycsb_profile.json
	@echo "profiles written to _profile/"

# Differential fuzz: NVCaracal vs Zen behind the shared engine
# interface, same seeded batches, one oracle.
diff-fuzz:
	dune exec bin/nvdb.exe -- fuzz --diff --iterations 200 --seed 11

# Seeded crash-recovery fuzz campaign with media faults (torn lines,
# bit-rot, dead lines) and crash-during-recovery injection. Override:
# make fuzz FUZZ_ITERS=200 FUZZ_SEEDS="1 2 3 4"
FUZZ_ITERS ?= 50
FUZZ_SEEDS ?= 1 2 3 4
fuzz:
	@for s in $(FUZZ_SEEDS); do \
	  echo "== fuzz --faults seed $$s =="; \
	  dune exec bin/nvdb.exe -- fuzz --iterations $(FUZZ_ITERS) --faults --seed $$s || exit 1; \
	done

# Seeded kill-9 chaos campaign against a real served instance: inject
# CHAOS_ITERS SIGKILLs at random crashpoints, recover each time from
# the admission journal, and check the pmem-image oracle plus
# exactly-once delivery. Runs both checkpoint cadences (replay-only
# and checkpoint+tail), then a 3-shard cluster campaign where shard
# processes are the kill victims and the oracle replays the router
# journal through a 1-member cluster.
# Override: make chaos CHAOS_ITERS=50 CHAOS_SEED=7
CHAOS_ITERS ?= 25
CHAOS_SEED ?= 1
chaos:
	dune exec bin/nvdb.exe -- chaos --iterations $(CHAOS_ITERS) --seed $(CHAOS_SEED)
	dune exec bin/nvdb.exe -- chaos --iterations $(CHAOS_ITERS) \
	  --seed $$(( $(CHAOS_SEED) + 1 )) --checkpoint-every 5
	dune exec bin/nvdb.exe -- chaos --iterations $(CHAOS_ITERS) \
	  --seed $$(( $(CHAOS_SEED) + 2 )) --shards 3

clean:
	dune clean
