# Convenience entry points; everything is plain dune underneath.

.PHONY: all build test fmt-check check bench clean

all: build

build:
	dune build

test:
	dune runtest

# ocamlformat is optional in the dev image; enforce only when present.
fmt-check:
	@if command -v ocamlformat >/dev/null 2>&1; then \
	  dune build @fmt; \
	else \
	  echo "ocamlformat not installed; skipping format check"; \
	fi

check: build test fmt-check

bench:
	dune exec bench/main.exe

clean:
	dune clean
