(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (simulated-time results), plus an optional Bechamel
   microbenchmark suite measuring the host-level cost of the hot
   engine building blocks.

   Usage:
     dune exec bench/main.exe                 # all tables and figures
     dune exec bench/main.exe -- --only fig7  # one experiment
     dune exec bench/main.exe -- --list       # list experiment ids
     dune exec bench/main.exe -- --micro      # Bechamel microbenches *)

let ppf = Format.std_formatter

(* Host wall-clock from the monotonic clock (immune to NTP steps and
   clock slews mid-run, unlike [Unix.gettimeofday]). *)
let wall_now () = Int64.to_float (Monotonic_clock.now ()) /. 1e9

let list_experiments () =
  List.iter
    (fun (id, desc, _) -> Format.fprintf ppf "%-8s %s@." id desc)
    Nv_harness.Experiments.all

(* The shared observability sinks behind --trace/--metrics/--profile
   (Nv_harness.Cli), installed into the Runner defaults so every
   experiment reports into them; the returned flush writes the
   collected data out after the selected experiments ran. *)
let setup_observability ~trace_file ~metrics_file ~trace_wall ~profile ~profile_out
    ~slow_epoch_ms =
  let o =
    Nv_harness.Cli.observability ~prog:"nvcaracal-bench" ~trace_wall ~profile ?profile_out
      ?slow_epoch_ms ~trace:trace_file ~metrics:metrics_file ()
  in
  (match o.Nv_harness.Cli.tracer with
  | Some tr -> Nv_harness.Runner.default_tracer := tr
  | None -> ());
  (match o.Nv_harness.Cli.metrics with
  | Some m -> Nv_harness.Runner.default_metrics := m
  | None -> ());
  (match o.Nv_harness.Cli.profile with
  | Some p -> Nv_harness.Runner.default_profile := p
  | None -> ());
  o.Nv_harness.Cli.flush

let run_experiments only =
  let selected =
    match only with
    | [] -> Nv_harness.Experiments.all
    | ids ->
        List.filter_map
          (fun id ->
            match List.find_opt (fun (i, _, _) -> i = id) Nv_harness.Experiments.all with
            | Some e -> Some e
            | None ->
                Format.fprintf ppf "unknown experiment %S (try --list)@." id;
                exit 2)
          ids
  in
  Format.fprintf ppf
    "NVCaracal reproduction — simulated-time results (scaled datasets; see DESIGN.md)@.";
  List.iter
    (fun (id, desc, run) ->
      Format.fprintf ppf "@.[%s] %s@." id desc;
      let t0 = wall_now () in
      run ppf;
      Format.fprintf ppf "(%s took %.1fs wall)@." id (wall_now () -. t0))
    selected

(* Write the headline fig5/fig8 metrics as a JSON snapshot; the
   committed copy (BENCH_pr3.json) documents the throughputs a clean
   checkout reproduces, since all numbers are simulated-time and
   deterministic. *)
let write_snapshot file =
  let metrics = Nv_harness.Experiments.snapshot () in
  let oc = open_out file in
  output_string oc "{\n";
  List.iteri
    (fun i (name, v) ->
      Printf.fprintf oc "  %S: %.3f%s\n" name v
        (if i = List.length metrics - 1 then "" else ","))
    metrics;
  output_string oc "}\n";
  close_out oc;
  Format.fprintf ppf "wrote %d benchmark metrics to %s@." (List.length metrics) file

(* ------------------------------------------------------------------ *)
(* Wall-clock scaling of the domain pool: run the headline workloads
   at --jobs 1, 2 and 4 and record host wall-clock seconds. The
   committed copy (BENCH_pr8.json) documents the scaling a clean
   checkout reproduces. Simulated-time results are byte-identical at
   any width, so committed counts and simulated time are asserted
   equal across widths as a sanity check — and every workload must
   report wide_execs > 0 at jobs >= 2 with its default configuration:
   SmallBank (undeclared reads) and TPC-C (generated inserts, dynamic
   write sets, deletes, counters) used to gate out of the wide path
   and must not silently do so again. *)

let parallel_snapshot file =
  let module W = Nv_workloads.Workload in
  let module Db = Nvcaracal.Db in
  let module Engine = Nv_harness.Engine in
  let widths = [ 1; 2; 4 ] in
  let run_once (w : W.t) (s : Engine.setup) jobs =
    let saved = !Engine.default_jobs in
    Engine.default_jobs := jobs;
    Fun.protect ~finally:(fun () -> Engine.default_jobs := saved) @@ fun () ->
    let config = Engine.caracal_config s w (Engine.spec (Engine.Caracal Nvcaracal.Config.Nvcaracal)) in
    let db = Db.create ~config ~tables:w.W.tables () in
    Db.bulk_load db (w.W.load ());
    let rng = Nv_util.Rng.create s.Engine.seed in
    let batches = Array.init s.Engine.epochs (fun _ -> w.W.gen_batch rng s.Engine.epoch_txns) in
    let t0 = wall_now () in
    Array.iter (fun b -> ignore (Db.run_epoch db b)) batches;
    let wall = wall_now () -. t0 in
    (wall, Db.committed_txns db, Db.total_time_ns db, Db.wide_execs db)
  in
  let cases =
    [
      ( "ycsb-default",
        Nv_workloads.Ycsb.make Nv_workloads.Ycsb.default,
        Nv_harness.Runner.setup ~epochs:6 ~epoch_txns:6000 () );
      ( "smallbank",
        Nv_workloads.Smallbank.make Nv_workloads.Smallbank.default,
        Nv_harness.Runner.setup ~epochs:8 ~epoch_txns:6000 ~row_size:128 () );
      ( "tpcc",
        Nv_workloads.Tpcc.make Nv_workloads.Tpcc.default,
        Nv_harness.Runner.setup ~epochs:6 ~epoch_txns:1500 ~insert_growth:15 () );
    ]
  in
  let rows =
    List.map
      (fun (name, w, s) ->
        let runs = List.map (fun jobs -> (jobs, run_once w s jobs)) widths in
        let _, (_, c1, sim1, _) = List.hd runs in
        List.iter
          (fun (jobs, (_, c, sim, wide)) ->
            if c <> c1 || sim <> sim1 then (
              Format.eprintf
                "nvcaracal-bench: %s diverged at jobs=%d (%d vs %d txns, %g vs %g ns)@." name
                jobs c c1 sim sim1;
              exit 1);
            if jobs > 1 && wide = 0 then (
              Format.eprintf
                "nvcaracal-bench: %s never ran wide at jobs=%d — a serial gate has regressed@."
                name jobs;
              exit 1))
          runs;
        let wall jobs = let w, _, _, _ = List.assoc jobs runs in w in
        let wide jobs = let _, _, _, n = List.assoc jobs runs in n in
        Format.fprintf ppf
          "%-14s jobs=1 %6.2fs   jobs=2 %6.2fs   jobs=4 %6.2fs   speedup(4) %.2fx   wide epochs %d/%d@."
          name (wall 1) (wall 2) (wall 4)
          (wall 1 /. wall 4)
          (wide 2) (wide 4);
        (name, runs, c1))
      cases
  in
  let host_cpus = Domain.recommended_domain_count () in
  if host_cpus < 4 then
    Format.fprintf ppf
      "note: host has %d hardware core(s); jobs=4 oversubscribes it, so wall-clock gains \
       require a >= 4-core machine (results stay byte-identical regardless)@."
      host_cpus;
  let oc = open_out file in
  Printf.fprintf oc "{\n  \"jobs_compared\": [1, 2, 4],\n  \"host_cpus\": %d,\n  \"workloads\": [\n"
    host_cpus;
  List.iteri
    (fun i (name, runs, committed) ->
      let wall jobs = let w, _, _, _ = List.assoc jobs runs in w in
      let wide jobs = let _, _, _, n = List.assoc jobs runs in n in
      Printf.fprintf oc
        "    { \"name\": %S, \"jobs1_wall_s\": %.3f, \"jobs2_wall_s\": %.3f, \
         \"jobs4_wall_s\": %.3f, \"speedup\": %.2f, \"committed_txns\": %d, \
         \"wide_epochs_jobs2\": %d, \"wide_epochs_jobs4\": %d }%s\n"
        name (wall 1) (wall 2) (wall 4)
        (wall 1 /. wall 4)
        committed (wide 2) (wide 4)
        (if i = List.length rows - 1 then "" else ",")
    )
    rows;
  output_string oc "  ]\n}\n";
  close_out oc;
  Format.fprintf ppf "wrote %d workload scaling records to %s@." (List.length rows) file

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks: host-level costs of hot primitives.       *)

let micro () =
  let open Bechamel in
  let stats () = Nv_nvmm.Stats.create Nv_nvmm.Memspec.default in
  let pmem_write =
    let p = Nv_nvmm.Pmem.create ~size:(1 lsl 20) () in
    let s = stats () in
    let i = ref 0 in
    Test.make ~name:"pmem.set_i64+flush"
      (Staged.stage (fun () ->
           let off = !i land 0xFFFF8 in
           incr i;
           Nv_nvmm.Pmem.set_i64 p off 42L;
           Nv_nvmm.Pmem.flush p s ~off ~len:8))
  in
  let pmem_write_cs =
    let p = Nv_nvmm.Pmem.create ~mode:Nv_nvmm.Pmem.Crash_safe ~size:(1 lsl 20) () in
    let s = stats () in
    let i = ref 0 in
    Test.make ~name:"pmem.set_i64+flush (crash-safe)"
      (Staged.stage (fun () ->
           let off = !i land 0xFFFF8 in
           incr i;
           Nv_nvmm.Pmem.set_i64 p off 42L;
           Nv_nvmm.Pmem.flush p s ~off ~len:8;
           (* Periodic fence so dirty-line state doesn't grow without
              bound across iterations. *)
           if !i land 0xFFF = 0 then Nv_nvmm.Pmem.fence p s))
  in
  let hash_index =
    let h = Nv_index.Hash_index.create ~initial_capacity:(1 lsl 16) () in
    let s = stats () in
    for k = 0 to 40_000 do
      Nv_index.Hash_index.insert h s (Int64.of_int k) k
    done;
    let i = ref 0 in
    Test.make ~name:"hash_index.find"
      (Staged.stage (fun () ->
           incr i;
           ignore (Nv_index.Hash_index.find h s (Int64.of_int (!i mod 40_000)))))
  in
  let ordered_index =
    let o = Nv_index.Ordered_index.create () in
    let s = stats () in
    for k = 0 to 40_000 do
      Nv_index.Ordered_index.insert o s (Int64.of_int k) k
    done;
    let i = ref 0 in
    Test.make ~name:"ordered_index.find"
      (Staged.stage (fun () ->
           incr i;
           ignore (Nv_index.Ordered_index.find o s (Int64.of_int (!i mod 40_000)))))
  in
  let version_append =
    let s = stats () in
    Test.make ~name:"version_array.append x16"
      (Staged.stage (fun () ->
           let va = Nvcaracal.Version_array.create ~epoch:2 ~nvmm_resident:false () in
           for seq = 0 to 15 do
             Nvcaracal.Version_array.append va s (Nvcaracal.Sid.make ~epoch:2 ~seq)
           done))
  in
  let btree_index =
    let b = Nv_index.Btree_index.create () in
    let s = stats () in
    for k = 0 to 40_000 do
      Nv_index.Btree_index.insert b s (Int64.of_int k) k
    done;
    let i = ref 0 in
    Test.make ~name:"btree_index.find"
      (Staged.stage (fun () ->
           incr i;
           ignore (Nv_index.Btree_index.find b s (Int64.of_int (!i mod 40_000)))))
  in
  let zipf =
    let z = Nv_util.Zipf.create ~n:1_000_000 ~theta:0.99 in
    let rng = Nv_util.Rng.create 7 in
    Test.make ~name:"zipf.sample" (Staged.stage (fun () -> ignore (Nv_util.Zipf.sample z rng)))
  in
  let tests =
    Test.make_grouped ~name:"nvcaracal-micro"
      [ pmem_write; pmem_write_cs; hash_index; ordered_index; btree_index; version_append; zipf ]
  in
  let benchmark () =
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
    let raw = Benchmark.all cfg instances tests in
    List.map (fun i -> Analyze.all (Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]) i raw)
      instances
    |> Analyze.merge (Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]) instances
  in
  let results = benchmark () in
  Hashtbl.iter
    (fun measure tbl ->
      Format.fprintf ppf "@.%s:@." measure;
      Hashtbl.iter
        (fun name result ->
          match Bechamel.Analyze.OLS.estimates result with
          | Some [ est ] -> Format.fprintf ppf "  %-32s %10.1f ns/run@." name est
          | _ -> Format.fprintf ppf "  %-32s (no estimate)@." name)
        tbl)
    results

(* ------------------------------------------------------------------ *)

let () =
  let open Cmdliner in
  let only =
    Arg.(value & opt_all string [] & info [ "only" ] ~docv:"ID" ~doc:"Run only experiment $(docv).")
  in
  let list_flag = Arg.(value & flag & info [ "list" ] ~doc:"List experiment ids and exit.") in
  let micro_flag =
    Arg.(value & flag & info [ "micro" ] ~doc:"Run Bechamel microbenchmarks instead.")
  in
  let trace_file = Nv_harness.Cli.trace in
  let metrics_file = Nv_harness.Cli.metrics in
  let snapshot_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "snapshot" ] ~docv:"FILE"
          ~doc:
            "Write the headline fig5/fig8 metrics (deterministic simulated-time numbers) as \
             JSON to $(docv) and exit.")
  in
  let parallel_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "parallel-snapshot" ] ~docv:"FILE"
          ~doc:
            "Measure wall-clock scaling of the engine's domain pool (jobs 1 vs 4 on the \
             headline workloads), write the results as JSON to $(docv) and exit.")
  in
  let jobs_arg = Nv_harness.Cli.jobs in
  let main only list_it micro_it trace_file metrics_file trace_wall profile profile_out
      slow_epoch_ms snapshot_file parallel_file jobs =
    Nv_harness.Cli.set_jobs jobs;
    if list_it then list_experiments ()
    else if micro_it then micro ()
    else
      match (snapshot_file, parallel_file) with
      | Some file, _ -> write_snapshot file
      | None, Some file -> parallel_snapshot file
      | None, None ->
          let flush_obs =
            setup_observability ~trace_file ~metrics_file ~trace_wall ~profile ~profile_out
              ~slow_epoch_ms
          in
          run_experiments only;
          flush_obs ()
  in
  let cmd =
    Cmd.v
      (Cmd.info "nvcaracal-bench" ~doc:"Regenerate the paper's tables and figures")
      Term.(
        const main $ only $ list_flag $ micro_flag $ trace_file $ metrics_file
        $ Nv_harness.Cli.trace_wall $ Nv_harness.Cli.profile $ Nv_harness.Cli.profile_out
        $ Nv_harness.Cli.slow_epoch_ms $ snapshot_file $ parallel_file $ jobs_arg)
  in
  exit (Cmd.eval cmd)
