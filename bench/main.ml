(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (simulated-time results), plus an optional Bechamel
   microbenchmark suite measuring the host-level cost of the hot
   engine building blocks.

   Usage:
     dune exec bench/main.exe                 # all tables and figures
     dune exec bench/main.exe -- --only fig7  # one experiment
     dune exec bench/main.exe -- --list       # list experiment ids
     dune exec bench/main.exe -- --micro      # Bechamel microbenches *)

let ppf = Format.std_formatter

let list_experiments () =
  List.iter
    (fun (id, desc, _) -> Format.fprintf ppf "%-8s %s@." id desc)
    Nv_harness.Experiments.all

(* Install the shared observability sinks behind --trace/--metrics and
   return a flush function writing the collected data out after the
   selected experiments ran. *)
let setup_observability ~trace_file ~metrics_file =
  let tracer =
    match trace_file with
    | None -> None
    | Some _ ->
        let tr = Nv_obs.Tracer.create () in
        Nv_harness.Runner.default_tracer := tr;
        Some tr
  in
  let metrics =
    match metrics_file with
    | None -> None
    | Some _ ->
        let m = Nv_obs.Metrics.create () in
        Nv_harness.Runner.default_metrics := m;
        Some m
  in
  let write what f file =
    try f file
    with Sys_error msg ->
      Format.eprintf "nvcaracal-bench: cannot write %s file: %s@." what msg;
      exit 1
  in
  fun () ->
    (match (trace_file, tracer) with
    | Some file, Some tr ->
        write "trace" (Nv_obs.Trace_export.write_file tr) file;
        Format.fprintf ppf "@.wrote %d trace events to %s (open in ui.perfetto.dev)@."
          (Nv_obs.Tracer.event_count tr)
          file
    | _ -> ());
    match (metrics_file, metrics) with
    | Some file, Some m ->
        write "metrics" (Nv_obs.Metrics.write_jsonl m) file;
        Format.fprintf ppf "wrote %d epoch metric records to %s@."
          (List.length (Nv_obs.Metrics.records m))
          file
    | _ -> ()

let run_experiments only =
  let selected =
    match only with
    | [] -> Nv_harness.Experiments.all
    | ids ->
        List.filter_map
          (fun id ->
            match List.find_opt (fun (i, _, _) -> i = id) Nv_harness.Experiments.all with
            | Some e -> Some e
            | None ->
                Format.fprintf ppf "unknown experiment %S (try --list)@." id;
                exit 2)
          ids
  in
  Format.fprintf ppf
    "NVCaracal reproduction — simulated-time results (scaled datasets; see DESIGN.md)@.";
  List.iter
    (fun (id, desc, run) ->
      Format.fprintf ppf "@.[%s] %s@." id desc;
      let t0 = Unix.gettimeofday () in
      run ppf;
      Format.fprintf ppf "(%s took %.1fs wall)@." id (Unix.gettimeofday () -. t0))
    selected

(* Write the headline fig5/fig8 metrics as a JSON snapshot; the
   committed copy (BENCH_pr3.json) documents the throughputs a clean
   checkout reproduces, since all numbers are simulated-time and
   deterministic. *)
let write_snapshot file =
  let metrics = Nv_harness.Experiments.snapshot () in
  let oc = open_out file in
  output_string oc "{\n";
  List.iteri
    (fun i (name, v) ->
      Printf.fprintf oc "  %S: %.3f%s\n" name v
        (if i = List.length metrics - 1 then "" else ","))
    metrics;
  output_string oc "}\n";
  close_out oc;
  Format.fprintf ppf "wrote %d benchmark metrics to %s@." (List.length metrics) file

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks: host-level costs of hot primitives.       *)

let micro () =
  let open Bechamel in
  let stats () = Nv_nvmm.Stats.create Nv_nvmm.Memspec.default in
  let pmem_write =
    let p = Nv_nvmm.Pmem.create ~size:(1 lsl 20) () in
    let s = stats () in
    let i = ref 0 in
    Test.make ~name:"pmem.set_i64+flush"
      (Staged.stage (fun () ->
           let off = !i land 0xFFFF8 in
           incr i;
           Nv_nvmm.Pmem.set_i64 p off 42L;
           Nv_nvmm.Pmem.flush p s ~off ~len:8))
  in
  let hash_index =
    let h = Nv_index.Hash_index.create ~initial_capacity:(1 lsl 16) () in
    let s = stats () in
    for k = 0 to 40_000 do
      Nv_index.Hash_index.insert h s (Int64.of_int k) k
    done;
    let i = ref 0 in
    Test.make ~name:"hash_index.find"
      (Staged.stage (fun () ->
           incr i;
           ignore (Nv_index.Hash_index.find h s (Int64.of_int (!i mod 40_000)))))
  in
  let ordered_index =
    let o = Nv_index.Ordered_index.create () in
    let s = stats () in
    for k = 0 to 40_000 do
      Nv_index.Ordered_index.insert o s (Int64.of_int k) k
    done;
    let i = ref 0 in
    Test.make ~name:"ordered_index.find"
      (Staged.stage (fun () ->
           incr i;
           ignore (Nv_index.Ordered_index.find o s (Int64.of_int (!i mod 40_000)))))
  in
  let version_append =
    let s = stats () in
    Test.make ~name:"version_array.append x16"
      (Staged.stage (fun () ->
           let va = Nvcaracal.Version_array.create ~epoch:2 ~nvmm_resident:false () in
           for seq = 0 to 15 do
             Nvcaracal.Version_array.append va s (Nvcaracal.Sid.make ~epoch:2 ~seq)
           done))
  in
  let btree_index =
    let b = Nv_index.Btree_index.create () in
    let s = stats () in
    for k = 0 to 40_000 do
      Nv_index.Btree_index.insert b s (Int64.of_int k) k
    done;
    let i = ref 0 in
    Test.make ~name:"btree_index.find"
      (Staged.stage (fun () ->
           incr i;
           ignore (Nv_index.Btree_index.find b s (Int64.of_int (!i mod 40_000)))))
  in
  let zipf =
    let z = Nv_util.Zipf.create ~n:1_000_000 ~theta:0.99 in
    let rng = Nv_util.Rng.create 7 in
    Test.make ~name:"zipf.sample" (Staged.stage (fun () -> ignore (Nv_util.Zipf.sample z rng)))
  in
  let tests =
    Test.make_grouped ~name:"nvcaracal-micro"
      [ pmem_write; hash_index; ordered_index; btree_index; version_append; zipf ]
  in
  let benchmark () =
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
    let raw = Benchmark.all cfg instances tests in
    List.map (fun i -> Analyze.all (Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]) i raw)
      instances
    |> Analyze.merge (Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]) instances
  in
  let results = benchmark () in
  Hashtbl.iter
    (fun measure tbl ->
      Format.fprintf ppf "@.%s:@." measure;
      Hashtbl.iter
        (fun name result ->
          match Bechamel.Analyze.OLS.estimates result with
          | Some [ est ] -> Format.fprintf ppf "  %-32s %10.1f ns/run@." name est
          | _ -> Format.fprintf ppf "  %-32s (no estimate)@." name)
        tbl)
    results

(* ------------------------------------------------------------------ *)

let () =
  let open Cmdliner in
  let only =
    Arg.(value & opt_all string [] & info [ "only" ] ~docv:"ID" ~doc:"Run only experiment $(docv).")
  in
  let list_flag = Arg.(value & flag & info [ "list" ] ~doc:"List experiment ids and exit.") in
  let micro_flag =
    Arg.(value & flag & info [ "micro" ] ~doc:"Run Bechamel microbenchmarks instead.")
  in
  let trace_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"Record simulated-time spans and write a Perfetto/Chrome trace to $(docv).")
  in
  let metrics_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:"Write per-epoch metric snapshots (JSON lines) to $(docv).")
  in
  let snapshot_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "snapshot" ] ~docv:"FILE"
          ~doc:
            "Write the headline fig5/fig8 metrics (deterministic simulated-time numbers) as \
             JSON to $(docv) and exit.")
  in
  let main only list_it micro_it trace_file metrics_file snapshot_file =
    if list_it then list_experiments ()
    else if micro_it then micro ()
    else
      match snapshot_file with
      | Some file -> write_snapshot file
      | None ->
          let flush_obs = setup_observability ~trace_file ~metrics_file in
          run_experiments only;
          flush_obs ()
  in
  let cmd =
    Cmd.v
      (Cmd.info "nvcaracal-bench" ~doc:"Regenerate the paper's tables and figures")
      Term.(
        const main $ only $ list_flag $ micro_flag $ trace_file $ metrics_file $ snapshot_file)
  in
  exit (Cmd.eval cmd)
